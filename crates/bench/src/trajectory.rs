//! Machine-readable `BENCH_*.json` cost trajectories and the CI trend check.
//!
//! The experiment tables in [`crate`] are human-readable; serving systems and
//! CI want the same round/bit accounting as JSON. This module emits five
//! files into the repository root (see `write_bench_json`):
//!
//! * **`BENCH_pipelines.json`** — `Vec<PipelinePoint>`: one point per
//!   (pipeline, instance size), each carrying the structured
//!   [`RoundReport`] of that run. The cost *trajectory* of a pipeline is the
//!   sequence of its points in instance-size order.
//! * **`BENCH_batch.json`** — a [`BatchTrajectory`]: the full
//!   [`BatchReport`] of one mixed batch served twice by a
//!   [`bcc_core::BatchEngine`] (cold cache, then warm cache), demonstrating
//!   the preprocessing amortization across requests.
//! * **`BENCH_stream.json`** — a [`StreamTrajectory`]: the full
//!   [`StreamReport`] of a mixed-priority workload submitted incrementally
//!   to a [`bcc_core::StreamEngine`] and collected as completions arrive,
//!   demonstrating that the streaming front-end meters exactly like the
//!   batch one (same `RequestCost` / `PreprocessingCost` vocabulary).
//! * **`BENCH_load.json`** — a [`crate::load::LoadBench`]: the committed
//!   scenario library (`scenarios/*.json`) run through the deterministic
//!   virtual-clock load harness, one [`crate::load::LoadTrajectory`] per
//!   scenario with per-class latency percentiles and ramp-search results
//!   (schema documented in [`crate::load`]).
//! * **`BENCH_load_metrics.json`** — a [`crate::load::LoadMetricsBench`]:
//!   one `bcc-metrics/v1` [`bcc_core::MetricsSnapshot`] per scenario
//!   ([`crate::load::metrics_snapshot`]), so dashboards consume the same
//!   metrics schema for the engine's live telemetry and the harness's
//!   simulated runs.
//!
//! # Schema (`bcc-bench/v1`)
//!
//! `BENCH_pipelines.json` is a JSON array of objects with fields
//! `{schema, pipeline, n, m, seed, total_rounds, total_bits,
//! total_operations, wall_ns, report}`, where `report` is a serialized
//! [`RoundReport`]: `{total_rounds, total_bits, total_operations,
//! breakdown: [[phase, {rounds, bits, operations}], ...]}`. `wall_ns` is
//! the median wall-clock time of the run over [`WALL_CLOCK_REPEATS`]
//! repeats — an additive honesty field: the trend check validates its
//! presence and shape (a positive number) but never its magnitude, because
//! wall-clock time is machine-dependent where the round/bit counters are
//! deterministic.
//!
//! `BENCH_batch.json` is an object `{schema, seed, workers, cold, warm}`
//! where `cold` and `warm` are serialized [`BatchReport`]s
//! (`bcc-batch-report/v1`, see `bcc_core::batch`); `cold` pays every
//! preprocessing, `warm` reuses the fingerprint-keyed cache.
//!
//! `BENCH_stream.json` is an object `{schema, seed, workers, report}` where
//! `report` is a serialized [`StreamReport`] (`bcc-stream-report/v1`, see
//! `bcc_core::stream`): request/class/backpressure/deadline counters, the
//! per-class WFQ scheduler counters (`report.scheduler.classes[*]` with
//! `{class, weight, rate_limit, submitted, dispatched, expired, throttled,
//! infeasible, predicted_rounds, actual_rounds}`, see
//! [`bcc_core::SchedulerStats`]), the bounded cache's
//! [`bcc_core::CacheStats`] (including its eviction `policy`, per-policy
//! eviction counters and the `rebuild_predicted_rounds` /
//! `rebuild_actual_rounds` build-estimation sums), the submission-order
//! `per_request` costs and the once-per-fingerprint `preprocessing` costs.
//!
//! The estimation-error fields (`predicted_rounds` / `actual_rounds` per
//! scheduler class, `rebuild_*_rounds` on the cache) were added by the
//! unified cost-model layer (`bcc_core::cost`), and the `calibration`
//! array (one entry per observed `(kind, size-bucket)` cell, with its
//! basis-unit and actual-round sums) by the size-bucketed rebuild of that
//! layer. Both additions are purely additive, so the schema tags stay
//! `bcc-bench/v1` / `bcc-stream-report/v1`; the numbers are produced by a
//! deterministic submission-order replay of the calibration loop, which is
//! what makes them safe for [`check_trend`] to guard.
//!
//! Field names in all three files are covered by golden-snapshot tests
//! (`tests/batch.rs` and `tests/stream.rs` in the workspace root), so
//! consumers may rely on them across PRs; incompatible changes bump the
//! `schema` tags.
//!
//! # Trend check
//!
//! [`check_trend`] is the CI guard over these artifacts: it regenerates the
//! quick trajectories in memory and compares them against the *committed*
//! `BENCH_*.json` files, reporting an issue for schema drift, disappeared
//! trajectory points, or a >2x regression in any tracked counter (total
//! rounds / total bits). Because every trajectory is deterministic, an
//! unchanged tree always passes; the check exists so a PR that regresses a
//! pipeline's communication cost (or forgets to regenerate the committed
//! artifacts after an intentional change) fails loudly.
//!
//! Two further guards ride on the same check: [`load_trend_issues`] holds
//! the load harness's loss counters, latency percentiles and ramp results
//! to the committed `BENCH_load.json` (a halved sustainable rate or a >2x
//! percentile regression fails CI), and [`estimation_issues`] bounds every
//! scheduler class's **symmetric ratio** cost-model estimation error
//! (`max(predicted, actual) / min(predicted, actual) − 1`) at
//! [`ESTIMATION_ERROR_MAX`]. The symmetry matters: the previous
//! `|p − a| / a` metric saturated at 1.0 for under-prediction, which let
//! the interactive class's ~10⁴x LP round blind spot hide below a 2.0
//! bound; under the honest metric a miss that size scores ≈9999 and turns
//! the job red (see [`estimation_summary`], which also prints the
//! per-bucket calibration coefficients).
//!
//! A third guard, [`telemetry_issues`], is the telemetry sanity gate: it
//! re-runs the committed smoke scenario with lifecycle tracing
//! ([`crate::load::run_scenario_traced`]) and reconciles the trace against
//! the scheduler's own counters — the number of `dispatched` trace events
//! must equal the WFQ scheduler's dispatched sum exactly, and the solve-end
//! events must match the trajectory's completed count. A mismatch means an
//! instrumentation point was dropped or double-fired, which is precisely
//! the class of bug observability code breeds.

use std::io;
use std::path::{Path, PathBuf};

use bcc_core::batch::{BatchEngine, BatchReport, Request};
use bcc_core::graph::generators;
use bcc_core::prelude::*;
use bcc_core::{RoundReport, StreamReport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use bcc_core::telemetry::TraceEvent;

use crate::load::{LoadBench, LoadMetricsBench};

/// Schema tag of every `BENCH_*.json` artifact this module writes.
pub const BENCH_SCHEMA: &str = "bcc-bench/v1";

/// One measured point of a pipeline's cost trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelinePoint {
    /// Schema tag (`"bcc-bench/v1"`).
    pub schema: String,
    /// Pipeline name: `sparsify`, `laplacian`, `lp` or `mcmf`.
    pub pipeline: String,
    /// Vertex count of the instance (constraint count for `lp`).
    pub n: u64,
    /// Edge count of the instance (variable count for `lp`).
    pub m: u64,
    /// Session seed of the run.
    pub seed: u64,
    /// Total rounds charged.
    pub total_rounds: u64,
    /// Total bits charged.
    pub total_bits: u64,
    /// Total communication operations.
    pub total_operations: u64,
    /// Median wall-clock nanoseconds of the run over
    /// [`WALL_CLOCK_REPEATS`] repeats. Machine-dependent — the trend check
    /// validates only that the field is present and positive, never its
    /// magnitude.
    pub wall_ns: u64,
    /// Full per-phase breakdown of the run.
    pub report: RoundReport,
}

/// The `BENCH_batch.json` payload: one batch served cold, then warm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchTrajectory {
    /// Schema tag (`"bcc-bench/v1"`).
    pub schema: String,
    /// Master seed of the engine.
    pub seed: u64,
    /// Worker threads used.
    pub workers: u64,
    /// The first run: every distinct fingerprint pays preprocessing.
    pub cold: BatchReport,
    /// The second run of the same workload: preprocessing served from cache.
    pub warm: BatchReport,
}

/// The `BENCH_stream.json` payload: one mixed-priority workload submitted
/// incrementally to a [`StreamEngine`] serve scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamTrajectory {
    /// Schema tag (`"bcc-bench/v1"`).
    pub schema: String,
    /// Master seed of the engine.
    pub seed: u64,
    /// Worker threads used (informational — the report is
    /// worker-count-independent).
    pub workers: u64,
    /// The full accounting of the serve scope.
    pub report: StreamReport,
}

/// Number of repeats of each pipeline run whose median wall-clock time a
/// [`PipelinePoint`] records. Every repeat is deterministic and produces the
/// identical report, so the extra runs only buy timing stability.
pub const WALL_CLOCK_REPEATS: usize = 3;

/// Runs `run` [`WALL_CLOCK_REPEATS`] times, returning the (identical) result
/// of the last repeat and the median wall-clock nanoseconds per repeat.
fn median_wall_ns<T>(mut run: impl FnMut() -> T) -> (T, u64) {
    let mut samples = [0u64; WALL_CLOCK_REPEATS];
    let mut result = None;
    for sample in samples.iter_mut() {
        let start = std::time::Instant::now();
        let value = run();
        *sample = u64::try_from(start.elapsed().as_nanos())
            .unwrap_or(u64::MAX)
            .max(1);
        result = Some(value);
    }
    samples.sort_unstable();
    (
        result.expect("WALL_CLOCK_REPEATS > 0"),
        samples[WALL_CLOCK_REPEATS / 2],
    )
}

fn point(
    pipeline: &str,
    n: usize,
    m: usize,
    seed: u64,
    report: RoundReport,
    wall_ns: u64,
) -> PipelinePoint {
    PipelinePoint {
        schema: BENCH_SCHEMA.to_string(),
        pipeline: pipeline.to_string(),
        n: n as u64,
        m: m as u64,
        seed,
        total_rounds: report.total_rounds,
        total_bits: report.total_bits,
        total_operations: report.total_operations,
        wall_ns,
        report,
    }
}

/// Measures the cost trajectories of all four pipelines over growing
/// instances (`quick` shrinks the instance list for CI).
pub fn pipelines_trajectory(seed: u64, quick: bool) -> Vec<PipelinePoint> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut points = Vec::new();

    // Theorem 1.2 — sparsify complete graphs.
    let sparsify_sizes: &[usize] = if quick { &[12, 18] } else { &[12, 18, 26, 36] };
    for &n in sparsify_sizes {
        let g = generators::complete(n);
        let (outcome, wall_ns) = median_wall_ns(|| {
            let mut session = Session::builder().seed(seed).build();
            session
                .sparsify(&g, 0.5)
                .expect("complete graph sparsifies")
        });
        points.push(point(
            "sparsify",
            g.n(),
            g.m(),
            seed,
            outcome.report,
            wall_ns,
        ));
    }

    // Theorem 1.3 — preprocess + 3 solves on growing grids; the report is the
    // prepared handle's cumulative cost (preprocessing charged once).
    let grid_sides: &[usize] = if quick { &[4, 5] } else { &[4, 5, 6, 8] };
    for &side in grid_sides {
        let g = generators::grid(side, side);
        let (report, wall_ns) = median_wall_ns(|| {
            let session = Session::builder().seed(seed).build();
            let mut prepared = session
                .laplacian(&g)
                .preprocess()
                .expect("grids are connected");
            for k in 1..=3 {
                let mut b = vec![0.0; g.n()];
                b[0] = 1.0;
                b[g.n() - k] = -1.0;
                prepared.solve(&b).expect("well-formed right-hand side");
            }
            prepared.report()
        });
        points.push(point("laplacian", g.n(), g.m(), seed, report, wall_ns));
    }

    // Theorem 1.4 — the simple box LP at growing variable counts via chained
    // unit-demand constraints.
    let lp_vars: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    for &vars in lp_vars {
        let triplets: Vec<(usize, usize, f64)> = (0..vars).map(|i| (i, i / 2, 1.0)).collect();
        let constraints = vars.div_ceil(2);
        let lp = LpInstance {
            a: bcc_core::linalg::CsrMatrix::from_triplets(vars, constraints, &triplets),
            b: vec![1.0; constraints],
            c: (0..vars).map(|i| (i % 2) as f64).collect(),
            lower: vec![0.0; vars],
            upper: vec![1.0; vars],
        };
        let request = bcc_core::LpRequest::new(
            vec![0.5; vars],
            LpOptions::new(1e-3, lp.m(), seed).with_uniform_weights(),
        );
        let (outcome, wall_ns) = median_wall_ns(|| {
            let mut session = Session::builder().seed(seed).build();
            session.lp(&lp, &request).expect("interior start")
        });
        points.push(point("lp", lp.n(), lp.m(), seed, outcome.report, wall_ns));
    }

    // Theorem 1.1 — min-cost max-flow on random instances.
    let flow_sizes: &[usize] = if quick { &[5] } else { &[5, 6, 8] };
    for &n in flow_sizes {
        let instance = generators::random_flow_instance(n, 0.3, 3, &mut rng);
        let (outcome, wall_ns) = median_wall_ns(|| {
            let mut session = Session::builder().seed(seed).build();
            session
                .min_cost_max_flow(&instance)
                .expect("generated instances are non-empty")
        });
        points.push(point(
            "mcmf",
            instance.graph.n(),
            instance.graph.m(),
            seed,
            outcome.report,
            wall_ns,
        ));
    }

    points
}

/// The mixed workload of the batch experiment: Laplacian solves on a few
/// repeated topologies (exercising the fingerprint cache) plus sparsify and
/// flow traffic.
pub fn batch_workload(seed: u64, quick: bool) -> Vec<Request> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBA7C);
    let mut requests = Vec::new();
    let grids: Vec<_> = if quick { vec![4, 5] } else { vec![4, 5, 6] };
    let solves_per_grid = if quick { 4 } else { 8 };
    for side in grids {
        let g = generators::grid(side, side);
        for k in 1..=solves_per_grid {
            let mut b = vec![0.0; g.n()];
            b[k % g.n()] = 1.0;
            b[g.n() - 1 - (k % g.n())] -= 1.0;
            if b.iter().all(|v| *v == 0.0) {
                b[0] = 1.0;
                b[g.n() - 1] = -1.0;
            }
            requests.push(Request::laplacian(g.clone(), b));
        }
    }
    requests.push(Request::sparsify(generators::complete(14), 0.5));
    requests.push(Request::sparsify(generators::complete(18), 1.0));
    requests.push(Request::min_cost_max_flow(
        generators::random_flow_instance(5, 0.3, 3, &mut rng),
    ));
    requests
}

/// Runs the batch experiment: the same workload served cold then warm by one
/// engine, so the two [`BatchReport`]s exhibit the cache amortization.
pub fn batch_trajectory(seed: u64, quick: bool) -> BatchTrajectory {
    let requests = batch_workload(seed, quick);
    let mut engine = BatchEngine::builder().seed(seed).build();
    let cold = engine.run(&requests);
    let warm = engine.run(&requests);
    BatchTrajectory {
        schema: BENCH_SCHEMA.to_string(),
        seed,
        workers: engine.workers() as u64,
        cold: cold.report,
        warm: warm.report,
    }
}

/// The mixed-priority workload of the streaming experiment: bulk Laplacian
/// traffic on repeated topologies interleaved with interactive sparsify /
/// LP / flow requests.
pub fn stream_workload(seed: u64, quick: bool) -> Vec<(Request, Priority)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x57E4);
    let mut requests = Vec::new();
    let grids: Vec<usize> = if quick { vec![4, 5] } else { vec![4, 5, 6] };
    let solves_per_grid = if quick { 3 } else { 6 };
    for side in grids {
        let g = generators::grid(side, side);
        for k in 1..=solves_per_grid {
            let mut b = vec![0.0; g.n()];
            b[k % g.n()] = 1.0;
            b[g.n() - 1 - (k % g.n())] -= 1.0;
            requests.push((Request::laplacian(g.clone(), b), Priority::Bulk));
        }
    }
    requests.push((
        Request::sparsify(generators::complete(14), 0.5),
        Priority::Interactive,
    ));
    let lp = LpInstance {
        a: bcc_core::linalg::CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
        b: vec![1.0],
        c: vec![0.0, 1.0],
        lower: vec![0.0, 0.0],
        upper: vec![1.0, 1.0],
    };
    let lp_request = bcc_core::LpRequest::new(
        vec![0.5, 0.5],
        LpOptions::new(1e-3, lp.m(), seed).with_uniform_weights(),
    );
    requests.push((Request::lp(lp, lp_request), Priority::Interactive));
    requests.push((
        Request::min_cost_max_flow(generators::random_flow_instance(5, 0.3, 3, &mut rng)),
        Priority::Interactive,
    ));
    requests
}

/// Runs the streaming experiment: the workload is submitted one request at a
/// time (mixed priorities) and results are collected as completions arrive,
/// exercising the incremental front-end the `BENCH_stream.json` consumers
/// track.
pub fn stream_trajectory(seed: u64, quick: bool) -> StreamTrajectory {
    let workload = stream_workload(seed, quick);
    let mut engine = StreamEngine::builder().seed(seed).build();
    let workers = engine.workers() as u64;
    let output = engine.serve(|client| {
        let tickets: Vec<_> = workload
            .iter()
            .map(|(request, priority)| {
                client
                    .submit(request.clone(), *priority)
                    .expect("blocking backpressure admits every submission")
            })
            .collect();
        for ticket in tickets {
            client
                .wait(ticket)
                .unwrap_or_else(|e| panic!("stream workload request failed: {e}"));
        }
    });
    StreamTrajectory {
        schema: BENCH_SCHEMA.to_string(),
        seed,
        workers,
        report: output.report,
    }
}

/// Writes `BENCH_pipelines.json`, `BENCH_batch.json`, `BENCH_stream.json`,
/// `BENCH_load.json` and `BENCH_load_metrics.json` into `dir`, returning the
/// written paths. Each file is verified to parse back before returning.
///
/// The load artifact always runs the *committed* scenario library
/// (`scenarios/` at the repository root) — the scenario documents, not
/// `seed`/`quick`, size that run, so the artifact stays bit-identical
/// between quick and full regenerations.
///
/// # Errors
///
/// Propagates filesystem errors; a file that does not round-trip through the
/// JSON parser is reported as [`io::ErrorKind::InvalidData`].
pub fn write_bench_json(dir: &Path, seed: u64, quick: bool) -> io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();

    let pipelines = pipelines_trajectory(seed, quick);
    let path = dir.join("BENCH_pipelines.json");
    let json = serde_json::to_string_pretty(&pipelines)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, format!("{json}\n"))?;
    let back: Vec<PipelinePoint> = serde_json::from_str(&json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if back != pipelines {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "BENCH_pipelines.json did not round-trip",
        ));
    }
    written.push(path);

    let batch = batch_trajectory(seed, quick);
    let path = dir.join("BENCH_batch.json");
    let json = serde_json::to_string_pretty(&batch)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, format!("{json}\n"))?;
    let back: BatchTrajectory = serde_json::from_str(&json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if back != batch {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "BENCH_batch.json did not round-trip",
        ));
    }
    written.push(path);

    let stream = stream_trajectory(seed, quick);
    let path = dir.join("BENCH_stream.json");
    let json = serde_json::to_string_pretty(&stream)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, format!("{json}\n"))?;
    let back: StreamTrajectory = serde_json::from_str(&json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if back != stream {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "BENCH_stream.json did not round-trip",
        ));
    }
    written.push(path);

    let load = fresh_load_bench()?;
    let path = dir.join("BENCH_load.json");
    let json = serde_json::to_string_pretty(&load)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, format!("{json}\n"))?;
    let back: LoadBench = serde_json::from_str(&json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if back != load {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "BENCH_load.json did not round-trip",
        ));
    }
    written.push(path);

    let metrics = crate::load::load_metrics_bench(&load);
    let path = dir.join("BENCH_load_metrics.json");
    let json = serde_json::to_string_pretty(&metrics)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, format!("{json}\n"))?;
    let back: LoadMetricsBench = serde_json::from_str(&json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if back != metrics {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "BENCH_load_metrics.json did not round-trip",
        ));
    }
    written.push(path);

    Ok(written)
}

/// Runs the committed scenario library through the load harness — the
/// in-memory side of `BENCH_load.json`, shared by [`write_bench_json`] and
/// [`check_trend`].
///
/// # Errors
///
/// Propagates [`crate::load::load_bench`] errors (missing library,
/// malformed scenario).
pub fn fresh_load_bench() -> io::Result<LoadBench> {
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    crate::load::load_bench(&repo_root().join("scenarios"), workers)
}

// ---------------------------------------------------------------------------
// CI trend check.
// ---------------------------------------------------------------------------

/// The regression threshold of the trend check: a tracked counter may grow
/// to at most this multiple of its committed value.
pub const TREND_MAX_RATIO: f64 = 2.0;

/// Flags `fresh` against `committed` for one tracked counter, appending an
/// issue when the counter regressed beyond [`TREND_MAX_RATIO`] (a counter
/// that was zero and became non-zero counts as a regression too).
fn check_counter(issues: &mut Vec<String>, what: &str, committed: u64, fresh: u64) {
    let regressed = if committed == 0 {
        fresh > 0
    } else {
        fresh as f64 > committed as f64 * TREND_MAX_RATIO
    };
    if regressed {
        issues.push(format!(
            "{what}: {fresh} vs committed {committed} (>{TREND_MAX_RATIO}x)"
        ));
    }
}

fn check_report_totals(
    issues: &mut Vec<String>,
    what: &str,
    committed: &RoundReport,
    fresh: &RoundReport,
) {
    check_counter(
        issues,
        &format!("{what} total_rounds"),
        committed.total_rounds,
        fresh.total_rounds,
    );
    check_counter(
        issues,
        &format!("{what} total_bits"),
        committed.total_bits,
        fresh.total_bits,
    );
}

/// Compares freshly measured trajectories against the committed ones,
/// returning one human-readable issue per schema drift, missing trajectory
/// point or >2x regression in a tracked counter (pure comparison logic; the
/// I/O lives in [`check_trend`]).
pub fn trend_issues(
    committed_pipelines: &[PipelinePoint],
    fresh_pipelines: &[PipelinePoint],
    committed_batch: &BatchTrajectory,
    fresh_batch: &BatchTrajectory,
    committed_stream: &StreamTrajectory,
    fresh_stream: &StreamTrajectory,
) -> Vec<String> {
    let mut issues = Vec::new();

    for point in committed_pipelines {
        if point.schema != BENCH_SCHEMA {
            issues.push(format!(
                "BENCH_pipelines.json: committed point {}({},{}) has schema {:?}, expected {:?} — \
                 regenerate the committed artifacts",
                point.pipeline, point.n, point.m, point.schema, BENCH_SCHEMA
            ));
        }
    }
    for committed in committed_pipelines {
        let key = (
            &committed.pipeline,
            committed.n,
            committed.m,
            committed.seed,
        );
        match fresh_pipelines
            .iter()
            .find(|p| (&p.pipeline, p.n, p.m, p.seed) == key)
        {
            None => issues.push(format!(
                "BENCH_pipelines.json: trajectory point {}({},{}) disappeared from the fresh run",
                committed.pipeline, committed.n, committed.m
            )),
            Some(fresh) => check_report_totals(
                &mut issues,
                &format!(
                    "pipeline {} (n={}, m={})",
                    committed.pipeline, committed.n, committed.m
                ),
                &committed.report,
                &fresh.report,
            ),
        }
    }

    for (name, committed, fresh) in [
        (
            "BENCH_batch.json",
            &committed_batch.schema,
            &fresh_batch.schema,
        ),
        (
            "BENCH_stream.json",
            &committed_stream.schema,
            &fresh_stream.schema,
        ),
    ] {
        if committed != fresh {
            issues.push(format!(
                "{name}: schema drift — committed {committed:?} vs fresh {fresh:?}"
            ));
        }
    }
    check_report_totals(
        &mut issues,
        "batch cold run",
        &committed_batch.cold.total,
        &fresh_batch.cold.total,
    );
    check_report_totals(
        &mut issues,
        "batch warm run",
        &committed_batch.warm.total,
        &fresh_batch.warm.total,
    );
    check_report_totals(
        &mut issues,
        "stream run",
        &committed_stream.report.total,
        &fresh_stream.report.total,
    );
    check_counter(
        &mut issues,
        "stream failures",
        committed_stream.report.failures,
        fresh_stream.report.failures,
    );
    // Scheduler-level guards: the tracked workload carries no deadlines, so
    // any expiration is a regression; rejected and infeasible admissions
    // likewise.
    check_counter(
        &mut issues,
        "stream expired (deadline) submissions",
        committed_stream.report.expired,
        fresh_stream.report.expired,
    );
    check_counter(
        &mut issues,
        "stream rejected submissions",
        committed_stream.report.rejected,
        fresh_stream.report.rejected,
    );
    check_counter(
        &mut issues,
        "stream infeasible-deadline rejections",
        committed_stream.report.infeasible,
        fresh_stream.report.infeasible,
    );
    // Cost-model guards: the per-class predicted/actual sums come from a
    // deterministic submission-order replay (bcc_core::cost), so on an
    // unchanged tree they reproduce exactly; a drift means the model (or
    // the workload's measured cost) changed and the artifacts need
    // regenerating.
    for committed in &committed_stream.report.scheduler.classes {
        let Some(fresh) = fresh_stream
            .report
            .scheduler
            .classes
            .iter()
            .find(|c| c.class == committed.class)
        else {
            issues.push(format!(
                "BENCH_stream.json: scheduler class {:?} disappeared from the fresh run",
                committed.class
            ));
            continue;
        };
        check_counter(
            &mut issues,
            &format!("stream class {} predicted_rounds", committed.class),
            committed.predicted_rounds,
            fresh.predicted_rounds,
        );
        check_counter(
            &mut issues,
            &format!("stream class {} actual_rounds", committed.class),
            committed.actual_rounds,
            fresh.actual_rounds,
        );
    }
    check_counter(
        &mut issues,
        "stream cache rebuild_predicted_rounds",
        committed_stream.report.cache.rebuild_predicted_rounds,
        fresh_stream.report.cache.rebuild_predicted_rounds,
    );
    check_counter(
        &mut issues,
        "stream cache rebuild_actual_rounds",
        committed_stream.report.cache.rebuild_actual_rounds,
        fresh_stream.report.cache.rebuild_actual_rounds,
    );
    issues
}

/// Compares a freshly simulated load run against the committed
/// `BENCH_load.json`, returning one issue per schema drift, disappeared
/// scenario or class, >2x regression in a loss counter or latency
/// percentile, halved completion count, or halved ramp-sustainable rate
/// (pure comparison logic; the I/O lives in [`check_trend`]).
pub fn load_trend_issues(committed: &LoadBench, fresh: &LoadBench) -> Vec<String> {
    let mut issues = Vec::new();
    if committed.schema != fresh.schema {
        issues.push(format!(
            "BENCH_load.json: schema drift — committed {:?} vs fresh {:?}",
            committed.schema, fresh.schema
        ));
    }
    for c in &committed.scenarios {
        let Some(f) = fresh.scenarios.iter().find(|s| s.scenario == c.scenario) else {
            issues.push(format!(
                "BENCH_load.json: scenario {:?} disappeared from the fresh run",
                c.scenario
            ));
            continue;
        };
        let what = |field: &str| format!("load scenario {} {field}", c.scenario);
        check_counter(&mut issues, &what("rejected"), c.rejected, f.rejected);
        check_counter(&mut issues, &what("expired"), c.expired, f.expired);
        check_counter(&mut issues, &what("infeasible"), c.infeasible, f.infeasible);
        check_counter(
            &mut issues,
            &what("total_rounds"),
            c.total_rounds,
            f.total_rounds,
        );
        if f.completed * 2 < c.completed {
            issues.push(format!(
                "{}: completed {} vs committed {} (less than half)",
                what("throughput"),
                f.completed,
                c.completed
            ));
        }
        for cc in &c.classes {
            let Some(fc) = f.classes.iter().find(|x| x.class == cc.class) else {
                issues.push(format!(
                    "BENCH_load.json: scenario {} class {:?} disappeared from the fresh run",
                    c.scenario, cc.class
                ));
                continue;
            };
            for (axis, committed_p, fresh_p) in [
                ("queue_wait", &cc.queue_wait, &fc.queue_wait),
                ("end_to_end", &cc.end_to_end, &fc.end_to_end),
            ] {
                let what =
                    |p: &str| format!("load scenario {} class {} {axis} {p}", c.scenario, cc.class);
                check_counter(
                    &mut issues,
                    &what("p50_ns"),
                    committed_p.p50_ns,
                    fresh_p.p50_ns,
                );
                check_counter(
                    &mut issues,
                    &what("p95_ns"),
                    committed_p.p95_ns,
                    fresh_p.p95_ns,
                );
                check_counter(
                    &mut issues,
                    &what("p99_ns"),
                    committed_p.p99_ns,
                    fresh_p.p99_ns,
                );
            }
        }
        match (&c.ramp, &f.ramp) {
            (Some(cr), Some(fr)) => {
                if fr.max_sustainable_rps < cr.max_sustainable_rps * 0.5 {
                    issues.push(format!(
                        "load scenario {} ramp: max sustainable rate {:.1} rps vs committed \
                         {:.1} rps (less than half)",
                        c.scenario, fr.max_sustainable_rps, cr.max_sustainable_rps
                    ));
                }
            }
            (Some(_), None) => issues.push(format!(
                "load scenario {}: ramp result disappeared from the fresh run",
                c.scenario
            )),
            (None, _) => {}
        }
    }
    issues
}

/// The wall-clock shape guard of `--check-trend`: every pipeline point must
/// carry a positive `wall_ns` (the regeneration pipeline always measures
/// one). The *magnitude* is deliberately unchecked — wall-clock time is
/// machine-dependent, so gating on it would make CI flaky; the field exists
/// for humans and dashboards, and this guard only keeps it from silently
/// disappearing or zeroing out.
pub fn wall_clock_issues(what: &str, points: &[PipelinePoint]) -> Vec<String> {
    points
        .iter()
        .filter(|p| p.wall_ns == 0)
        .map(|p| {
            format!(
                "{what}: pipeline {} (n={}, m={}) has wall_ns = 0 — the wall-clock field must \
                 be present and positive (regenerate the artifacts)",
                p.pipeline, p.n, p.m
            )
        })
        .collect()
}

/// The bound [`estimation_issues`] holds every scheduler class's symmetric
/// cost-model estimation error to: predicted and actual rounds must agree
/// within 1.5x in either direction.
pub const ESTIMATION_ERROR_MAX: f64 = 0.5;

/// Flags every scheduler class (and the cache's rebuild estimate) of a
/// stream trajectory whose symmetric ratio estimation error
/// ([`bcc_core::wfq::ClassStats::estimation_error`],
/// `max(predicted, actual) / min(predicted, actual) − 1`) exceeds
/// [`ESTIMATION_ERROR_MAX`].
///
/// The metric is deliberately symmetric: the earlier `|p − a| / a` form
/// saturated at 1.0 for any under-prediction, so the interactive class's
/// ~10⁴x LP round blind spot sat at ≈0.9999 and passed a 2.0 bound forever.
/// Under `max/min − 1` a 10,000x miss scores ≈9999 whichever side is short
/// and trips any sane bound — the regression test below pins that down.
/// [`estimation_summary`] prints the raw numbers either way.
pub fn estimation_issues(stream: &StreamTrajectory) -> Vec<String> {
    let mut issues = Vec::new();
    for class in &stream.report.scheduler.classes {
        if let Some(error) = class.estimation_error() {
            if error > ESTIMATION_ERROR_MAX {
                issues.push(format!(
                    "stream class {} estimation error {error:.2} exceeds \
                     {ESTIMATION_ERROR_MAX} (predicted {} vs actual {} rounds) — recalibrate \
                     the cost model or regenerate the artifacts",
                    class.class, class.predicted_rounds, class.actual_rounds
                ));
            }
        }
    }
    let cache = &stream.report.cache;
    if let Some(error) = bcc_core::wfq::symmetric_ratio_error(
        cache.rebuild_predicted_rounds,
        cache.rebuild_actual_rounds,
    ) {
        if error > ESTIMATION_ERROR_MAX {
            issues.push(format!(
                "stream cache rebuild estimation error {error:.2} exceeds \
                 {ESTIMATION_ERROR_MAX} (predicted {} vs actual {} rounds)",
                cache.rebuild_predicted_rounds, cache.rebuild_actual_rounds
            ));
        }
    }
    issues
}

/// A one-line human-readable summary of the cost model's estimation error
/// in a stream trajectory — printed by the bench CI job so the calibration
/// quality shows up in the job log without digging through
/// `BENCH_stream.json`.
pub fn estimation_summary(stream: &StreamTrajectory) -> String {
    let mut parts: Vec<String> = stream
        .report
        .scheduler
        .classes
        .iter()
        .filter(|c| c.predicted_rounds > 0 || c.actual_rounds > 0)
        .map(|c| {
            let error = c
                .estimation_error()
                .map(|e| format!("{:.1}%", e * 100.0))
                .unwrap_or_else(|| "n/a".to_string());
            format!(
                "{} pred={} act={} err={}",
                c.class, c.predicted_rounds, c.actual_rounds, error
            )
        })
        .collect();
    let cache = &stream.report.cache;
    parts.push(format!(
        "cache-rebuild pred={} act={}",
        cache.rebuild_predicted_rounds, cache.rebuild_actual_rounds
    ));
    // The per-bucket coefficients the replayed calibration settled on:
    // `kind[b<bucket>]=<rounds per basis unit>x<observations>`. This is the
    // calibration state a CI log reader needs to judge whether a class
    // error above comes from a cold bucket (prior-driven) or a drifting
    // measured rate.
    if !stream.report.calibration.is_empty() {
        let cells: Vec<String> = stream
            .report
            .calibration
            .iter()
            .map(|c| {
                let rate = c.actual_rounds as f64 / c.basis_units.max(1) as f64;
                format!("{}[b{}]={rate:.2}r/u x{}", c.kind, c.bucket, c.observations)
            })
            .collect();
        parts.push(format!("calibration {}", cells.join(" ")));
    }
    format!("stream estimation error: {}", parts.join("; "))
}

/// The telemetry sanity gate of `--check-trend`: runs the committed smoke
/// scenario with lifecycle tracing and reconciles the exported trace against
/// the scheduler's own accounting. Two identities must hold exactly:
///
/// * one `dispatched` trace event per WFQ dispatch — the trace's
///   [`TraceEvent::Dispatched`] count equals the sum of the scheduler
///   classes' `dispatched` counters;
/// * one `solve-end` trace event per completed request — the
///   [`TraceEvent::SolveEnd`] count equals the trajectory's `completed`
///   total.
///
/// Both runs are deterministic under the virtual clock, so any slack would
/// only hide dropped or double-fired instrumentation points.
///
/// # Errors
///
/// Propagates filesystem/parse errors for a missing or malformed
/// `scenarios/smoke.json`.
pub fn telemetry_issues(root: &Path) -> io::Result<Vec<String>> {
    let path = root.join("scenarios").join("smoke.json");
    let scenario = crate::load::read_scenario(&path)?;
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (trajectory, records, stats) =
        crate::load::run_scenario_traced(&scenario, workers).map_err(|e| parse_error(&path, e))?;

    let mut issues = Vec::new();
    let dispatched_events = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Dispatched))
        .count() as u64;
    let dispatched_scheduler: u64 = stats.classes.iter().map(|c| c.dispatched).sum();
    if dispatched_events != dispatched_scheduler {
        issues.push(format!(
            "telemetry: smoke scenario trace has {dispatched_events} dispatched events but the \
             scheduler dispatched {dispatched_scheduler} requests — an instrumentation point was \
             dropped or double-fired"
        ));
    }
    let solve_end_events = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::SolveEnd))
        .count() as u64;
    if solve_end_events != trajectory.completed {
        issues.push(format!(
            "telemetry: smoke scenario trace has {solve_end_events} solve-end events but the \
             trajectory completed {} requests — an instrumentation point was dropped or \
             double-fired",
            trajectory.completed
        ));
    }
    Ok(issues)
}

// Reading + parsing stay separate (instead of one generic helper bounded on
// `serde::Deserialize`) so this code compiles unchanged against both the
// offline serde shim and the real crate, whose owned-deserialization bound is
// spelled `DeserializeOwned` — see shims/README.md on keeping the swap
// manifest-only.
fn read_committed(path: &Path) -> io::Result<String> {
    std::fs::read_to_string(path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!(
                "{}: {e} (regenerate with `cargo run -p bench --release --bin expts -- --quick-json`)",
                path.display()
            ),
        )
    })
}

fn parse_error(path: &Path, e: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {e}", path.display()),
    )
}

/// The CI bench trend check: regenerates the quick trajectories in memory
/// (never touching the committed files) and returns the list of issues from
/// [`trend_issues`] — empty means the committed `BENCH_*.json` artifacts are
/// still representative.
///
/// # Errors
///
/// Propagates filesystem/parse errors for missing or malformed committed
/// artifacts.
pub fn check_trend(root: &Path, seed: u64, quick: bool) -> io::Result<Vec<String>> {
    let path = root.join("BENCH_pipelines.json");
    let committed_pipelines: Vec<PipelinePoint> =
        serde_json::from_str(&read_committed(&path)?).map_err(|e| parse_error(&path, e))?;
    let path = root.join("BENCH_batch.json");
    let committed_batch: BatchTrajectory =
        serde_json::from_str(&read_committed(&path)?).map_err(|e| parse_error(&path, e))?;
    let path = root.join("BENCH_stream.json");
    let committed_stream: StreamTrajectory =
        serde_json::from_str(&read_committed(&path)?).map_err(|e| parse_error(&path, e))?;
    let path = root.join("BENCH_load.json");
    let committed_load: LoadBench =
        serde_json::from_str(&read_committed(&path)?).map_err(|e| parse_error(&path, e))?;
    let fresh_pipelines = pipelines_trajectory(seed, quick);
    let fresh_batch = batch_trajectory(seed, quick);
    let fresh_stream = stream_trajectory(seed, quick);
    let fresh_load = fresh_load_bench()?;
    let mut issues = trend_issues(
        &committed_pipelines,
        &fresh_pipelines,
        &committed_batch,
        &fresh_batch,
        &committed_stream,
        &fresh_stream,
    );
    issues.extend(load_trend_issues(&committed_load, &fresh_load));
    issues.extend(estimation_issues(&fresh_stream));
    issues.extend(wall_clock_issues(
        "BENCH_pipelines.json (committed)",
        &committed_pipelines,
    ));
    issues.extend(wall_clock_issues(
        "BENCH_pipelines.json (fresh)",
        &fresh_pipelines,
    ));

    let path = root.join("BENCH_load_metrics.json");
    let committed_metrics: LoadMetricsBench =
        serde_json::from_str(&read_committed(&path)?).map_err(|e| parse_error(&path, e))?;
    let fresh_metrics = crate::load::load_metrics_bench(&fresh_load);
    if committed_metrics != fresh_metrics {
        issues.push(
            "BENCH_load_metrics.json: committed metrics snapshots differ from the fresh run — \
             regenerate the committed artifacts"
                .to_string(),
        );
    }
    issues.extend(telemetry_issues(root)?);
    Ok(issues)
}

/// The repository root (two levels above this crate's manifest), where the
/// `BENCH_*.json` artifacts live.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pipeline_trajectory_covers_all_four_pipelines() {
        let points = pipelines_trajectory(7, true);
        for pipeline in ["sparsify", "laplacian", "lp", "mcmf"] {
            let of_kind: Vec<_> = points.iter().filter(|p| p.pipeline == pipeline).collect();
            assert!(!of_kind.is_empty(), "missing {pipeline} points");
            for p in of_kind {
                assert_eq!(p.schema, BENCH_SCHEMA);
                assert!(p.total_rounds > 0);
                assert_eq!(p.total_rounds, p.report.total_rounds);
                assert!(p.wall_ns > 0, "every point measures wall-clock time");
            }
        }
    }

    #[test]
    fn wall_clock_guard_accepts_measured_points_and_flags_zeroes() {
        let points = pipelines_trajectory(7, true);
        assert!(wall_clock_issues("fresh", &points).is_empty());

        let mut zeroed = points.clone();
        zeroed[0].wall_ns = 0;
        let issues = wall_clock_issues("committed", &zeroed);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("wall_ns"), "{issues:?}");

        // The trend comparison itself never gates on the magnitude: a fresh
        // run 100x slower (or faster) than the committed one passes.
        let mut slower = points.clone();
        for p in &mut slower {
            p.wall_ns *= 100;
        }
        let batch = batch_trajectory(7, true);
        let stream = stream_trajectory(7, true);
        let issues = trend_issues(&points, &slower, &batch, &batch, &stream, &stream);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn batch_trajectory_shows_the_cache_amortization() {
        let t = batch_trajectory(7, true);
        assert_eq!(t.schema, BENCH_SCHEMA);
        assert_eq!(t.cold.requests, t.warm.requests);
        assert_eq!(t.cold.failures, 0);
        assert!(t.cold.cache_misses > 0, "cold run pays preprocessing");
        assert_eq!(t.warm.cache_misses, 0, "warm run is fully cached");
        assert!(
            t.warm.total.total_rounds < t.cold.total.total_rounds,
            "the warm batch must be cheaper than the cold one"
        );
    }

    #[test]
    fn write_bench_json_round_trips_into_a_temp_dir() {
        let dir = std::env::temp_dir().join("bcc-bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let written = write_bench_json(&dir, 7, true).unwrap();
        assert_eq!(written.len(), 5);
        for path in written {
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.contains("bcc-bench/v1"), "{path:?} missing schema tag");
        }
    }

    #[test]
    fn stream_trajectory_covers_mixed_priorities_without_failures() {
        let t = stream_trajectory(7, true);
        assert_eq!(t.schema, BENCH_SCHEMA);
        assert_eq!(t.report.schema, "bcc-stream-report/v1");
        assert_eq!(t.report.failures, 0);
        assert_eq!(t.report.rejected, 0);
        assert_eq!(t.report.expired, 0, "the tracked workload has no deadlines");
        assert!(t.report.interactive > 0, "interactive traffic present");
        assert!(t.report.bulk > 0, "bulk traffic present");
        assert!(t.report.cache_hits > 0, "repeated topologies hit the cache");
        assert!(t.report.total.total_rounds > 0);
        // The WFQ scheduler counters ride along in the payload.
        assert_eq!(t.report.scheduler.policy, "wfq");
        let dispatched: u64 = t
            .report
            .scheduler
            .classes
            .iter()
            .map(|c| c.dispatched)
            .sum();
        assert_eq!(dispatched, t.report.requests);
        // The trajectory is deterministic — CI's trend check relies on it.
        assert_eq!(t.report, stream_trajectory(7, true).report);
        // The cost-model estimation error rides along: the bulk class (all
        // Laplacian traffic) charged rounds and was predicted, and the
        // cache recorded its rebuild estimation sums.
        let bulk = t
            .report
            .scheduler
            .classes
            .iter()
            .find(|c| c.class == "bulk")
            .expect("bulk class present");
        assert!(bulk.predicted_rounds > 0);
        assert!(bulk.actual_rounds > 0);
        assert!(bulk.estimation_error().is_some());
        assert!(t.report.cache.rebuild_actual_rounds > 0);
        assert_eq!(t.report.infeasible, 0);
        let summary = estimation_summary(&t);
        assert!(summary.starts_with("stream estimation error:"), "{summary}");
        assert!(summary.contains("bulk pred="), "{summary}");
        assert!(summary.contains("cache-rebuild pred="), "{summary}");
    }

    #[test]
    fn trend_check_accepts_identical_trajectories() {
        let pipelines = pipelines_trajectory(7, true);
        let batch = batch_trajectory(7, true);
        let stream = stream_trajectory(7, true);
        let issues = trend_issues(&pipelines, &pipelines, &batch, &batch, &stream, &stream);
        assert!(issues.is_empty(), "unexpected issues: {issues:?}");
    }

    #[test]
    fn trend_check_flags_schema_drift_regressions_and_missing_points() {
        let pipelines = pipelines_trajectory(7, true);
        let batch = batch_trajectory(7, true);
        let stream = stream_trajectory(7, true);

        // >2x cost regression on one pipeline point.
        let mut slow = pipelines.clone();
        slow[0].report.total_rounds = pipelines[0].report.total_rounds * 2 + 1;
        let issues = trend_issues(&pipelines, &slow, &batch, &batch, &stream, &stream);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("total_rounds"), "{issues:?}");

        // A trajectory point disappearing from the fresh run.
        let missing = pipelines[1..].to_vec();
        let issues = trend_issues(&pipelines, &missing, &batch, &batch, &stream, &stream);
        assert!(
            issues.iter().any(|i| i.contains("disappeared")),
            "{issues:?}"
        );

        // Schema drift on the stream artifact.
        let mut drifted = stream.clone();
        drifted.schema = "bcc-bench/v2".to_string();
        let issues = trend_issues(&pipelines, &pipelines, &batch, &batch, &stream, &drifted);
        assert!(
            issues.iter().any(|i| i.contains("schema drift")),
            "{issues:?}"
        );

        // New stream failures count as a regression even from zero.
        let mut failing = stream.clone();
        failing.report.failures = 1;
        let issues = trend_issues(&pipelines, &pipelines, &batch, &batch, &stream, &failing);
        assert!(issues.iter().any(|i| i.contains("failures")), "{issues:?}");

        // So does a deadline expiration appearing in the tracked workload.
        let mut expiring = stream.clone();
        expiring.report.expired = 2;
        let issues = trend_issues(&pipelines, &pipelines, &batch, &batch, &stream, &expiring);
        assert!(issues.iter().any(|i| i.contains("expired")), "{issues:?}");

        // An infeasible-deadline rejection appearing likewise.
        let mut infeasible = stream.clone();
        infeasible.report.infeasible = 1;
        let issues = trend_issues(&pipelines, &pipelines, &batch, &batch, &stream, &infeasible);
        assert!(
            issues.iter().any(|i| i.contains("infeasible")),
            "{issues:?}"
        );

        // The estimation-error sums are guarded per class: a >2x drift in a
        // class's predicted rounds is flagged.
        let mut drifted_model = stream.clone();
        for class in &mut drifted_model.report.scheduler.classes {
            class.predicted_rounds = class.predicted_rounds * 3 + 1;
        }
        let issues = trend_issues(
            &pipelines,
            &pipelines,
            &batch,
            &batch,
            &stream,
            &drifted_model,
        );
        assert!(
            issues.iter().any(|i| i.contains("predicted_rounds")),
            "{issues:?}"
        );

        // Growth within the 2x budget passes.
        let mut within = pipelines.clone();
        within[0].report.total_rounds = pipelines[0].report.total_rounds * 2;
        let issues = trend_issues(&pipelines, &within, &batch, &batch, &stream, &stream);
        assert!(issues.is_empty(), "{issues:?}");
    }

    fn sample_load() -> LoadBench {
        use crate::load::{LoadClassPoint, LoadTrajectory, RampProbe, RampResult};
        use bcc_core::LatencyPercentiles;
        LoadBench {
            schema: BENCH_SCHEMA.to_string(),
            scenarios: vec![LoadTrajectory {
                schema: BENCH_SCHEMA.to_string(),
                scenario: "sample".to_string(),
                seed: 7,
                duration_ms: 100,
                offered: 50,
                completed: 44,
                rejected: 2,
                expired: 3,
                infeasible: 1,
                cache_hits: 5,
                cache_misses: 2,
                total_rounds: 9000,
                peak_workers: 2,
                classes: vec![LoadClassPoint {
                    class: "interactive".to_string(),
                    offered: 50,
                    completed: 44,
                    rejected: 2,
                    expired: 3,
                    infeasible: 1,
                    queue_wait: LatencyPercentiles::from_ns_samples(vec![100, 200, 900]),
                    end_to_end: LatencyPercentiles::from_ns_samples(vec![400, 600, 1800]),
                }],
                ramp: Some(RampResult {
                    max_sustainable_rps: 120.0,
                    probes: vec![RampProbe {
                        rps: 120.0,
                        offered: 50,
                        loss_fraction: 0.0,
                        p99_e2e_ms: 1.2,
                        sustainable: true,
                    }],
                }),
            }],
        }
    }

    #[test]
    fn load_trend_check_accepts_identical_runs_and_flags_regressions() {
        let committed = sample_load();
        assert!(load_trend_issues(&committed, &committed).is_empty());

        // A >2x latency percentile regression is flagged.
        let mut slow = committed.clone();
        slow.scenarios[0].classes[0].end_to_end.p99_ns *= 3;
        let issues = load_trend_issues(&committed, &slow);
        assert!(issues.iter().any(|i| i.contains("p99_ns")), "{issues:?}");

        // Halving the ramp's sustainable rate is flagged.
        let mut collapsed = committed.clone();
        collapsed.scenarios[0]
            .ramp
            .as_mut()
            .unwrap()
            .max_sustainable_rps = 50.0;
        let issues = load_trend_issues(&committed, &collapsed);
        assert!(
            issues.iter().any(|i| i.contains("max sustainable")),
            "{issues:?}"
        );

        // New loss (expired jumping >2x) is flagged.
        let mut lossy = committed.clone();
        lossy.scenarios[0].expired = committed.scenarios[0].expired * 2 + 1;
        let issues = load_trend_issues(&committed, &lossy);
        assert!(issues.iter().any(|i| i.contains("expired")), "{issues:?}");

        // Losing half the throughput is flagged even though lower counts
        // never trip the 2x growth rule.
        let mut starved = committed.clone();
        starved.scenarios[0].completed = committed.scenarios[0].completed / 2 - 1;
        let issues = load_trend_issues(&committed, &starved);
        assert!(
            issues.iter().any(|i| i.contains("less than half")),
            "{issues:?}"
        );

        // A scenario disappearing from the fresh run is flagged.
        let empty = LoadBench {
            schema: BENCH_SCHEMA.to_string(),
            scenarios: Vec::new(),
        };
        let issues = load_trend_issues(&committed, &empty);
        assert!(
            issues.iter().any(|i| i.contains("disappeared")),
            "{issues:?}"
        );
    }

    #[test]
    fn estimation_guard_passes_today_and_flags_an_overcharging_model() {
        // Seed 2022 is the tracked trajectory — the one the committed
        // artifacts record and CI's trend gate regenerates. The LP-family
        // priors are calibrated against it (a one-shot random MCMF instance
        // cannot be priced within 1.5x at every seed from a prior alone;
        // after one observation the size-bucketed calibration takes over).
        let stream = stream_trajectory(2022, true);
        let issues = estimation_issues(&stream);
        assert!(issues.is_empty(), "{issues:?}");

        // A model drifting into >1.5x over-charging turns the check red.
        let mut drifted = stream.clone();
        for class in &mut drifted.report.scheduler.classes {
            if class.actual_rounds > 0 {
                class.predicted_rounds = class.actual_rounds * 4;
            }
        }
        let issues = estimation_issues(&drifted);
        assert!(
            issues.iter().any(|i| i.contains("estimation error")),
            "{issues:?}"
        );
    }

    #[test]
    fn a_ten_thousand_x_under_prediction_trips_the_guard() {
        // Regression: the old `|p − a| / a` metric saturated at 1.0 for any
        // under-prediction, so exactly this shape — the interactive class's
        // 10,000x LP blind spot — passed a 2.0 bound forever. The symmetric
        // ratio metric scores it ≈9999 and the guard fires.
        let mut stream = stream_trajectory(2022, true);
        for class in &mut stream.report.scheduler.classes {
            if class.class == "interactive" {
                class.actual_rounds = 10_000;
                class.predicted_rounds = 1;
            }
        }
        let issues = estimation_issues(&stream);
        assert!(
            issues
                .iter()
                .any(|i| i.contains("interactive") && i.contains("estimation error")),
            "{issues:?}"
        );

        // The same blind spot existed on the cache's rebuild comparison.
        let mut stream = stream_trajectory(2022, true);
        stream.report.cache.rebuild_predicted_rounds = 1;
        stream.report.cache.rebuild_actual_rounds = 10_000;
        let issues = estimation_issues(&stream);
        assert!(
            issues.iter().any(|i| i.contains("cache rebuild")),
            "{issues:?}"
        );
    }
}
