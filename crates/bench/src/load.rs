//! The declarative load harness: scenario-driven traffic over the four
//! pipeline kinds, simulated on a virtual clock, reported as per-class
//! latency percentiles, with a ramp mode that binary-searches the maximum
//! sustainable arrival rate.
//!
//! # What a scenario is
//!
//! A [`Scenario`] is a serde document (schema tag `bcc-load-scenario/v1`;
//! the committed library lives in `scenarios/` at the repository root)
//! naming a request mix over the four pipeline kinds. Each [`ClassSpec`]
//! binds one scheduling class (a [`Priority`] label: `"interactive"`,
//! `"bulk"`, `"custom-<id>"`) to
//!
//! * a WFQ `weight`, an optional token-bucket `rate_limit` and an optional
//!   relative `deadline_ms` — exactly the per-class knobs of the real
//!   [`bcc_core::StreamEngine`];
//! * an [`Arrival`] process: open-loop Poisson at a mean rate, a constant
//!   (evenly spaced) rate, or periodic bursts with optional jitter;
//! * a [`RequestSpec`]: the pipeline kind and instance shape whose *measured*
//!   round cost the class's jobs charge (see "Demand profiling" below).
//!
//! Scenario-level fields size the simulated plant: `workers` parallel
//! servers (optionally elastic up to `max_workers`: the pool grows when the
//! queued backlog cost exceeds what the current workers drain within the
//! resize horizon and parks back down when the queue empties, mirroring the
//! engine's elastic pool), `service_rounds_per_ms` (how many rounds one
//! server retires per simulated millisecond), a bounded admission queue
//! (`queue_capacity`, `0` = unbounded) and a bounded preprocessing cache
//! (`cache_capacity` LRU slots, `0` = unbounded) that Laplacian topologies
//! churn through.
//!
//! # Virtual-clock guarantees
//!
//! The harness never reads wall-clock time. Arrival schedules are generated
//! by a seeded splitmix64 stream (a pure function of `(seed, class index)`,
//! shared across ramp probes so higher-rate runs are coupled monotonically),
//! and the run itself is a single-threaded discrete-event simulation over
//! the real [`bcc_core::wfq::WfqQueue`] discipline in integer virtual
//! nanoseconds. Request costs come from deterministic [`Session`] round
//! accounting, so the whole [`LoadTrajectory`] — every counter and every
//! percentile — is a pure function of the scenario document. Repeated runs
//! are bit-identical, and the *profiling* worker count (the only real
//! parallelism, see below) provably cannot affect the output.
//!
//! # Demand profiling
//!
//! Before simulating, the harness measures each class's request cost by
//! running a small, bounded set of variants of its [`RequestSpec`] through
//! fresh [`Session`]s (three seed variants per class; Laplacian classes use
//! `churn` distinct weight-perturbed topologies instead, each carrying its
//! own preprocessing fingerprint for the cache model). Arrival `k` of a
//! class charges variant `k mod variants` — so the simulation replays real,
//! measured round costs, not guesses. Profiling work items are independent
//! pure functions of the scenario seed; they are spread over
//! `profile_workers` threads purely for wall-clock speed.
//!
//! # Ramp search
//!
//! A scenario with a [`RampSpec`] also runs a bisection over the total
//! offered arrival rate: every class's arrival process is scaled
//! proportionally to probe rate `r`, the scenario is re-simulated, and the
//! probe is *sustainable* when the loss fraction
//! `(rejected + expired + infeasible) / offered` stays within
//! `max_loss_fraction` and (if `max_p99_ms > 0`) no class's end-to-end p99
//! exceeds it. `iterations` bisection steps between `min_rps` and `max_rps`
//! give [`RampResult::max_sustainable_rps`] — the highest probed rate that
//! was sustainable (`0.0` when even the lowest probe collapses).
//!
//! # Artifact
//!
//! [`load_bench`] runs the whole committed scenario library and produces the
//! `BENCH_load.json` payload ([`LoadBench`], schema `bcc-bench/v1` like its
//! sibling artifacts); `bench::trajectory::write_bench_json` writes it and
//! the CI trend check guards its counters and percentiles.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use bcc_core::graph::generators;
use bcc_core::prelude::*;
use bcc_core::telemetry::{MetricsRegistry, MetricsSnapshot, TraceEvent, TraceRecord};
use bcc_core::wfq::{ClassConfig, SchedulerStats, WfqQueue};
use bcc_core::{LatencyPercentiles, RateLimit};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::trajectory::BENCH_SCHEMA;

/// Schema tag of every scenario document the harness accepts.
pub const SCENARIO_SCHEMA: &str = "bcc-load-scenario/v1";

/// Simulated nanoseconds per simulated millisecond.
const NS_PER_MS: u64 = 1_000_000;

/// Seed variants profiled per class for non-Laplacian request kinds.
const SEED_VARIANTS: usize = 3;

/// Hard cap on generated arrivals per class — a guard against a runaway
/// rate (e.g. an absurd ramp `max_rps`) allocating unboundedly, not a knob.
const MAX_ARRIVALS_PER_CLASS: usize = 1 << 20;

/// Elastic-pool resize horizon in simulated milliseconds: the pool grows
/// when the queued backlog cost would take the current workers longer than
/// this to drain (the simulated analog of the engine's wall-clock horizon).
const POOL_DRAIN_HORIZON_MS: u64 = 10;

// ---------------------------------------------------------------------------
// Scenario model.
// ---------------------------------------------------------------------------

/// One declarative load scenario (schema `bcc-load-scenario/v1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Schema tag ([`SCENARIO_SCHEMA`]).
    pub schema: String,
    /// Scenario name — the key trend checks match committed results by.
    pub name: String,
    /// Human-readable intent of the scenario.
    pub description: String,
    /// Master seed of arrival generation and demand profiling.
    pub seed: u64,
    /// Length of the arrival window in simulated milliseconds (admitted
    /// work still drains to completion afterwards).
    pub duration_ms: u64,
    /// Service rate of one simulated worker, in rounds per simulated
    /// millisecond.
    pub service_rounds_per_ms: u64,
    /// Parallel simulated workers (the elastic pool's floor when
    /// `max_workers` is set).
    pub workers: u64,
    /// Elastic worker-pool ceiling (`0` = a fixed pool of `workers`): the
    /// simulated plant grows from `workers` toward this bound when the
    /// queued backlog cost exceeds what the current pool drains within the
    /// resize horizon, and parks back down to `workers` when the queue
    /// empties — the same backlog-cost ÷ service-rate rule as
    /// [`bcc_core::StreamEngine`]'s elastic pool.
    pub max_workers: u64,
    /// Admission queue bound (`0` = unbounded): arrivals past it are
    /// rejected, mirroring [`bcc_core::stream::BackpressurePolicy::Reject`].
    pub queue_capacity: u64,
    /// Preprocessing-cache LRU slots (`0` = unbounded): a Laplacian job
    /// whose topology fingerprint misses pays its preprocessing rounds.
    pub cache_capacity: u64,
    /// The request mix, one entry per scheduling class.
    pub classes: Vec<ClassSpec>,
    /// Optional max-sustainable-rate ramp search.
    pub ramp: Option<RampSpec>,
}

/// One scheduling class of a scenario: scheduling knobs, arrival process
/// and request shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Class label, parsed by [`Priority::parse_label`] (`"interactive"`,
    /// `"bulk"` or `"custom-<id>"`).
    pub name: String,
    /// WFQ weight of the class.
    pub weight: u32,
    /// Optional token-bucket rate limit (same semantics as the engine's).
    pub rate_limit: Option<RateLimit>,
    /// Optional relative deadline: an arrival must dispatch within this many
    /// simulated milliseconds or it expires; admission rejects it outright
    /// when the expected queue wait already exceeds it.
    pub deadline_ms: Option<u64>,
    /// The class's arrival process.
    pub arrival: Arrival,
    /// The request kind and shape whose measured cost the class charges.
    pub request: RequestSpec,
}

/// An open-loop arrival process over the scenario's duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Arrival {
    /// Poisson arrivals at a mean rate of `rps` requests per simulated
    /// second (exponential gaps via seeded inverse-transform sampling).
    Poisson {
        /// Mean arrival rate, requests per simulated second.
        rps: f64,
    },
    /// Evenly spaced arrivals at exactly `rps` requests per simulated
    /// second.
    Constant {
        /// Arrival rate, requests per simulated second.
        rps: f64,
    },
    /// `count` near-simultaneous arrivals at the start of every period of
    /// `every_ms`, each delayed by a uniform jitter in `[0, jitter_ms)`.
    Burst {
        /// Arrivals per burst.
        count: u64,
        /// Burst period in simulated milliseconds.
        every_ms: u64,
        /// Uniform per-arrival jitter bound in simulated milliseconds
        /// (`0` = perfectly simultaneous).
        jitter_ms: u64,
    },
}

/// The pipeline kind and instance shape a class's requests exercise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestSpec {
    /// Spectral sparsification of a complete graph on `n` vertices
    /// (Theorem 1.2).
    Sparsify {
        /// Vertex count of the complete graph.
        n: u64,
        /// Sparsification accuracy.
        epsilon: f64,
    },
    /// Laplacian solves on `rows × cols` grids (Theorem 1.3). `churn`
    /// distinct weight-perturbed topologies rotate through the arrivals, so
    /// a churn larger than the scenario's `cache_capacity` defeats the
    /// preprocessing cache (the cache-hostile fingerprint-churn workload).
    Laplacian {
        /// Grid rows.
        rows: u64,
        /// Grid columns.
        cols: u64,
        /// Distinct topologies rotating through the class (min 1).
        churn: u64,
    },
    /// The chained unit-demand box LP at `vars` variables (Theorem 1.4).
    Lp {
        /// LP variable count.
        vars: u64,
    },
    /// Min-cost max-flow on random instances of `n` vertices (Theorem 1.1).
    Mcmf {
        /// Vertex count of the flow instance.
        n: u64,
    },
}

/// The ramp-search configuration: bisect the total offered rate for the
/// highest load the scenario sustains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RampSpec {
    /// Lower bracket of the total offered rate, requests per second.
    pub min_rps: f64,
    /// Upper bracket of the total offered rate, requests per second.
    pub max_rps: f64,
    /// Largest tolerable `(rejected + expired + infeasible) / offered`.
    pub max_loss_fraction: f64,
    /// Largest tolerable per-class end-to-end p99 in simulated
    /// milliseconds (`0` = unbounded).
    pub max_p99_ms: f64,
    /// Bisection steps (each one simulated probe).
    pub iterations: u64,
}

impl Arrival {
    /// The process's nominal mean rate in requests per simulated second.
    pub fn nominal_rps(&self) -> f64 {
        match self {
            Arrival::Poisson { rps } | Arrival::Constant { rps } => *rps,
            Arrival::Burst {
                count, every_ms, ..
            } => *count as f64 * 1000.0 / (*every_ms).max(1) as f64,
        }
    }

    /// The same process scaled to `factor` times its nominal rate (burst
    /// counts round to the nearest integer, min 1).
    fn scaled(&self, factor: f64) -> Arrival {
        match self {
            Arrival::Poisson { rps } => Arrival::Poisson { rps: rps * factor },
            Arrival::Constant { rps } => Arrival::Constant { rps: rps * factor },
            Arrival::Burst {
                count,
                every_ms,
                jitter_ms,
            } => Arrival::Burst {
                count: ((*count as f64 * factor).round() as u64).max(1),
                every_ms: *every_ms,
                jitter_ms: *jitter_ms,
            },
        }
    }
}

impl Scenario {
    /// The scenario's total nominal offered rate: the sum of its classes'
    /// [`Arrival::nominal_rps`].
    pub fn nominal_rps(&self) -> f64 {
        self.classes.iter().map(|c| c.arrival.nominal_rps()).sum()
    }

    /// Checks the document for the invariants the simulator relies on,
    /// returning the first violation as a human-readable message.
    ///
    /// # Errors
    ///
    /// Rejects a wrong schema tag, an empty class list, an unparsable or
    /// duplicated class label, a zero worker count / service rate /
    /// duration, and non-positive arrival rates.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCENARIO_SCHEMA {
            return Err(format!(
                "scenario {:?}: schema {:?}, expected {SCENARIO_SCHEMA:?}",
                self.name, self.schema
            ));
        }
        if self.classes.is_empty() {
            return Err(format!("scenario {:?}: no classes", self.name));
        }
        if self.duration_ms == 0 || self.workers == 0 || self.service_rounds_per_ms == 0 {
            return Err(format!(
                "scenario {:?}: duration_ms, workers and service_rounds_per_ms must be positive",
                self.name
            ));
        }
        if self.max_workers != 0 && self.max_workers < self.workers {
            return Err(format!(
                "scenario {:?}: max_workers ({}) below workers ({})",
                self.name, self.max_workers, self.workers
            ));
        }
        for (i, class) in self.classes.iter().enumerate() {
            if Priority::parse_label(&class.name).is_none() {
                return Err(format!(
                    "scenario {:?}: class {i} has label {:?}, expected \
                     \"interactive\", \"bulk\" or \"custom-<id>\"",
                    self.name, class.name
                ));
            }
            if self.classes[..i].iter().any(|c| c.name == class.name) {
                return Err(format!(
                    "scenario {:?}: duplicate class label {:?}",
                    self.name, class.name
                ));
            }
            let positive = match class.arrival {
                Arrival::Poisson { rps } | Arrival::Constant { rps } => rps > 0.0,
                Arrival::Burst {
                    count, every_ms, ..
                } => count > 0 && every_ms > 0,
            };
            if !positive {
                return Err(format!(
                    "scenario {:?}: class {:?} has a non-positive arrival rate",
                    self.name, class.name
                ));
            }
        }
        if let Some(ramp) = &self.ramp {
            if !(ramp.min_rps > 0.0 && ramp.max_rps > ramp.min_rps) {
                return Err(format!(
                    "scenario {:?}: ramp needs 0 < min_rps < max_rps",
                    self.name
                ));
            }
            if ramp.iterations == 0 {
                return Err(format!(
                    "scenario {:?}: ramp needs iterations > 0",
                    self.name
                ));
            }
        }
        Ok(())
    }

    /// A copy of the scenario with every arrival process scaled to `factor`
    /// times its nominal rate and the ramp stripped — what one ramp probe
    /// simulates.
    fn scaled(&self, factor: f64) -> Scenario {
        let mut scaled = self.clone();
        scaled.ramp = None;
        for class in &mut scaled.classes {
            class.arrival = class.arrival.scaled(factor);
        }
        scaled
    }
}

// ---------------------------------------------------------------------------
// Results.
// ---------------------------------------------------------------------------

/// The `BENCH_load.json` payload: one [`LoadTrajectory`] per committed
/// scenario, in library (file-name) order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadBench {
    /// Schema tag (`"bcc-bench/v1"`).
    pub schema: String,
    /// One result per scenario.
    pub scenarios: Vec<LoadTrajectory>,
}

/// The full deterministic result of one simulated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTrajectory {
    /// Schema tag (`"bcc-bench/v1"`).
    pub schema: String,
    /// The scenario's name.
    pub scenario: String,
    /// The scenario's seed.
    pub seed: u64,
    /// The scenario's arrival-window length in simulated milliseconds.
    pub duration_ms: u64,
    /// Arrivals generated across all classes.
    pub offered: u64,
    /// Jobs that dispatched and completed.
    pub completed: u64,
    /// Arrivals rejected because the admission queue was full.
    pub rejected: u64,
    /// Admitted jobs that expired in the queue past their deadline.
    pub expired: u64,
    /// Arrivals rejected at admission because the expected wait already
    /// exceeded their deadline.
    pub infeasible: u64,
    /// Preprocessing-cache hits across dispatched Laplacian jobs.
    pub cache_hits: u64,
    /// Preprocessing-cache misses (each charged its preprocessing rounds).
    pub cache_misses: u64,
    /// Total rounds of service charged, preprocessing included.
    pub total_rounds: u64,
    /// Highest worker-pool target the elastic resize rule reached (equal to
    /// the scenario's `workers` when the pool is fixed).
    pub peak_workers: u64,
    /// Per-class counters and latency percentiles, in scenario class order.
    pub classes: Vec<LoadClassPoint>,
    /// The ramp-search result, when the scenario configured one.
    pub ramp: Option<RampResult>,
}

/// Counters and latency percentiles of one class in one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadClassPoint {
    /// Class label.
    pub class: String,
    /// Arrivals generated for the class.
    pub offered: u64,
    /// Jobs of the class that completed.
    pub completed: u64,
    /// Arrivals rejected on a full queue.
    pub rejected: u64,
    /// Admitted jobs that expired past their deadline.
    pub expired: u64,
    /// Arrivals rejected as deadline-infeasible at admission.
    pub infeasible: u64,
    /// Admission → dispatch percentiles over dispatched jobs (simulated
    /// nanoseconds; expired and rejected arrivals are excluded).
    pub queue_wait: LatencyPercentiles,
    /// Admission → completion percentiles over completed jobs.
    pub end_to_end: LatencyPercentiles,
}

/// The outcome of a scenario's ramp search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RampResult {
    /// The highest probed total rate that was sustainable (`0.0` when every
    /// probe collapsed).
    pub max_sustainable_rps: f64,
    /// Every bisection probe, in probe order.
    pub probes: Vec<RampProbe>,
}

/// One simulated probe of the ramp search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RampProbe {
    /// The probed total offered rate, requests per simulated second.
    pub rps: f64,
    /// Arrivals the probe generated.
    pub offered: u64,
    /// `(rejected + expired + infeasible) / offered` of the probe.
    pub loss_fraction: f64,
    /// The worst per-class end-to-end p99 of the probe, simulated
    /// milliseconds.
    pub p99_e2e_ms: f64,
    /// Whether the probe met the ramp's loss and latency bounds.
    pub sustainable: bool,
}

// ---------------------------------------------------------------------------
// Seeded arrival generation.
// ---------------------------------------------------------------------------

/// One step of the splitmix64 stream — the harness's only randomness.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A derived stream seed, mixing a purpose tag and an index into the master
/// seed.
fn mix(seed: u64, purpose: u64, index: u64) -> u64 {
    let mut state = seed
        ^ purpose.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    splitmix64(&mut state)
}

/// A uniform draw in the half-open interval `(0, 1]` — never zero, so
/// `ln(u)` is always finite.
fn unit_open(x: u64) -> f64 {
    ((x >> 11) as f64 + 1.0) / 9_007_199_254_740_992.0
}

/// The arrival schedule of one class, in sorted simulated nanoseconds since
/// the run's start. A pure function of `(seed, class_idx, arrival,
/// duration_ms)` — notably *not* of the other classes, so a ramp probe that
/// scales the rate reuses the same underlying uniform stream and arrival
/// schedules couple monotonically across probes.
pub fn class_arrivals(
    seed: u64,
    class_idx: usize,
    arrival: &Arrival,
    duration_ms: u64,
) -> Vec<u64> {
    let horizon = duration_ms.saturating_mul(NS_PER_MS);
    let mut state = mix(seed, 0xA881, class_idx as u64);
    let mut times = Vec::new();
    match arrival {
        Arrival::Poisson { rps } => {
            if *rps <= 0.0 {
                return times;
            }
            let mut t = 0.0f64;
            while times.len() < MAX_ARRIVALS_PER_CLASS {
                let u = unit_open(splitmix64(&mut state));
                t += -u.ln() / rps * 1e9;
                if t >= horizon as f64 {
                    break;
                }
                times.push(t as u64);
            }
        }
        Arrival::Constant { rps } => {
            if *rps <= 0.0 {
                return times;
            }
            let gap = 1e9 / rps;
            let mut k = 0u64;
            while times.len() < MAX_ARRIVALS_PER_CLASS {
                let t = k as f64 * gap;
                if t >= horizon as f64 {
                    break;
                }
                times.push(t as u64);
                k += 1;
            }
        }
        Arrival::Burst {
            count,
            every_ms,
            jitter_ms,
        } => {
            let every = (*every_ms).max(1) * NS_PER_MS;
            let mut start = 0u64;
            'bursts: while start < horizon {
                for _ in 0..*count {
                    if times.len() >= MAX_ARRIVALS_PER_CLASS {
                        break 'bursts;
                    }
                    let jitter = if *jitter_ms == 0 {
                        0
                    } else {
                        splitmix64(&mut state) % (*jitter_ms * NS_PER_MS)
                    };
                    let t = start + jitter;
                    if t < horizon {
                        times.push(t);
                    }
                }
                start += every;
            }
            times.sort_unstable();
        }
    }
    times
}

// ---------------------------------------------------------------------------
// Demand profiling.
// ---------------------------------------------------------------------------

/// The measured cost of one request variant: what one simulated job of the
/// variant charges.
#[derive(Debug, Clone)]
struct DemandVariant {
    /// Service rounds of the request proper (the Laplacian solve alone for
    /// Laplacian variants).
    rounds: u64,
    /// The simulated preprocessing-cache key, for kinds with preprocessing.
    fingerprint: Option<u64>,
    /// Preprocessing rounds charged when the fingerprint misses the cache.
    prep_rounds: u64,
}

/// Measures one `(class, variant)` demand through a fresh [`Session`] — a
/// pure function of `(scenario seed, class_idx, variant, spec)`, which is
/// what keeps the harness's output independent of profiling parallelism.
fn profile_variant(
    scenario_seed: u64,
    class_idx: usize,
    variant: usize,
    spec: &RequestSpec,
) -> DemandVariant {
    let vseed = mix(scenario_seed, class_idx as u64 + 1, variant as u64 + 1);
    match spec {
        RequestSpec::Sparsify { n, epsilon } => {
            let g = generators::complete((*n).max(3) as usize);
            let mut session = Session::builder().seed(vseed).build();
            let outcome = session
                .sparsify(&g, *epsilon)
                .expect("complete graphs sparsify");
            DemandVariant {
                rounds: outcome.report.total_rounds.max(1),
                fingerprint: None,
                prep_rounds: 0,
            }
        }
        RequestSpec::Laplacian { rows, cols, .. } => {
            // Variant = topology index: distinct weight perturbations give
            // distinct preprocessing fingerprints (the churn axis).
            let base = generators::grid((*rows).max(2) as usize, (*cols).max(2) as usize);
            let g = if variant == 0 {
                base
            } else {
                base.map_weights(|e| e.weight * (1.0 + variant as f64 * 0.001))
            };
            let session = Session::builder().seed(scenario_seed).build();
            let mut prepared = session
                .laplacian(&g)
                .preprocess()
                .expect("grids are connected");
            let prep_rounds = prepared.preprocessing_report().total_rounds;
            let n = g.n();
            let mut b = vec![0.0; n];
            b[0] = 1.0;
            b[n - 1] = -1.0;
            let solve = prepared.solve(&b).expect("well-formed right-hand side");
            DemandVariant {
                rounds: solve.report.total_rounds.max(1),
                fingerprint: Some(mix(0x4C61_704C, class_idx as u64, variant as u64)),
                prep_rounds,
            }
        }
        RequestSpec::Lp { vars } => {
            let vars = (*vars).max(2) as usize;
            let triplets: Vec<(usize, usize, f64)> = (0..vars).map(|i| (i, i / 2, 1.0)).collect();
            let constraints = vars.div_ceil(2);
            let lp = LpInstance {
                a: bcc_core::linalg::CsrMatrix::from_triplets(vars, constraints, &triplets),
                b: vec![1.0; constraints],
                c: (0..vars).map(|i| (i % 2) as f64).collect(),
                lower: vec![0.0; vars],
                upper: vec![1.0; vars],
            };
            let request = bcc_core::LpRequest::new(
                vec![0.5; vars],
                LpOptions::new(1e-2, lp.m(), vseed).with_uniform_weights(),
            );
            let mut session = Session::builder().seed(vseed).build();
            let outcome = session.lp(&lp, &request).expect("interior start");
            DemandVariant {
                rounds: outcome.report.total_rounds.max(1),
                fingerprint: None,
                prep_rounds: 0,
            }
        }
        RequestSpec::Mcmf { n } => {
            let mut rng = ChaCha8Rng::seed_from_u64(vseed);
            let instance = generators::random_flow_instance((*n).max(4) as usize, 0.3, 3, &mut rng);
            let mut session = Session::builder().seed(vseed).build();
            let outcome = session
                .min_cost_max_flow(&instance)
                .expect("generated instances are non-empty");
            DemandVariant {
                rounds: outcome.report.total_rounds.max(1),
                fingerprint: None,
                prep_rounds: 0,
            }
        }
    }
}

/// How many demand variants a class profiles.
fn variant_count(spec: &RequestSpec) -> usize {
    match spec {
        RequestSpec::Laplacian { churn, .. } => (*churn).max(1) as usize,
        _ => SEED_VARIANTS,
    }
}

/// Profiles every class's demand variants, spreading the independent
/// measurements over `profile_workers` threads. Each measurement is a pure
/// function of its seeds, so the returned table — and therefore the whole
/// harness output — is identical for every worker count.
fn profile_demands(scenario: &Scenario, profile_workers: usize) -> Vec<Vec<DemandVariant>> {
    let items: Vec<(usize, usize)> = scenario
        .classes
        .iter()
        .enumerate()
        .flat_map(|(c, class)| (0..variant_count(&class.request)).map(move |v| (c, v)))
        .collect();
    let slots: Vec<Mutex<Option<DemandVariant>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..profile_workers.max(1).min(items.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(&(c, v)) = items.get(i) else { break };
                let demand = profile_variant(scenario.seed, c, v, &scenario.classes[c].request);
                *slots[i].lock().expect("no panics while holding the slot") = Some(demand);
            });
        }
    });
    let mut demands: Vec<Vec<DemandVariant>> =
        scenario.classes.iter().map(|_| Vec::new()).collect();
    for (&(c, _), slot) in items.iter().zip(&slots) {
        let demand = slot
            .lock()
            .expect("no panics while holding the slot")
            .take()
            .expect("every work item was measured");
        demands[c].push(demand);
    }
    demands
}

// ---------------------------------------------------------------------------
// The discrete-event simulation.
// ---------------------------------------------------------------------------

/// The payload of one simulated job in the [`WfqQueue`].
struct SimPayload {
    class_idx: usize,
    variant: usize,
    arrived: u64,
    /// The job's arrival ordinal in the merged (time, class, seq) order —
    /// the request id its trace events carry.
    req: u64,
}

/// Trace lanes of the simulated timeline: admission-side events
/// (submitted/queued/rejected/infeasible/expired).
const SIM_LANE_ADMIT: u32 = 0;
/// Dispatch-side events (dispatched, cache probe, solve-begin).
const SIM_LANE_DISPATCH: u32 = 1;
/// Completion events (solve-end).
const SIM_LANE_COMPLETE: u32 = 2;

/// Appends one trace record when tracing is on — the simulation's analogue
/// of the engine's [`bcc_core::TelemetrySink`], collecting into a plain
/// `Vec` because the single-threaded simulator needs neither lanes nor
/// bounded buffers.
fn push_trace(
    trace: &mut Option<&mut Vec<TraceRecord>>,
    at_ns: u64,
    lane: u32,
    event: TraceEvent,
    request: u64,
    detail: u64,
) {
    if let Some(records) = trace.as_deref_mut() {
        records.push(TraceRecord {
            at_ns,
            lane,
            request,
            event,
            detail,
        });
    }
}

/// A bounded LRU set of preprocessing fingerprints (capacity `0` =
/// unbounded), mirroring the engine's fingerprint-keyed cache shape.
struct SimCache {
    capacity: usize,
    /// Most-recently-used last.
    entries: Vec<u64>,
}

impl SimCache {
    fn new(capacity: u64) -> Self {
        SimCache {
            capacity: capacity as usize,
            entries: Vec::new(),
        }
    }

    /// Touches `fp`, returning whether it was already cached.
    fn touch(&mut self, fp: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|&e| e == fp) {
            self.entries.remove(pos);
            self.entries.push(fp);
            return true;
        }
        self.entries.push(fp);
        if self.capacity > 0 && self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
        false
    }
}

#[derive(Default)]
struct ClassAccum {
    offered: u64,
    completed: u64,
    rejected: u64,
    expired: u64,
    infeasible: u64,
    wait_ns: Vec<u64>,
    e2e_ns: Vec<u64>,
}

/// Simulates one scenario against a profiled demand table, producing its
/// [`LoadTrajectory`] (without a ramp — [`run_scenario`] adds that).
fn simulate(scenario: &Scenario, demands: &[Vec<DemandVariant>]) -> LoadTrajectory {
    simulate_core(scenario, demands, None).0
}

/// The simulation proper: one scenario against a profiled demand table,
/// optionally recording every lifecycle event into `trace`, returning the
/// trajectory plus the [`WfqQueue`]'s own scheduler counters (the
/// reconciliation target of the telemetry sanity gate: the number of
/// `dispatched` trace events must equal the scheduler's dispatched sum).
/// Tracing is write-only — with `trace` on or off the trajectory is
/// byte-identical.
fn simulate_core(
    scenario: &Scenario,
    demands: &[Vec<DemandVariant>],
    mut trace: Option<&mut Vec<TraceRecord>>,
) -> (LoadTrajectory, SchedulerStats) {
    let priorities: Vec<Priority> = scenario
        .classes
        .iter()
        .map(|c| Priority::parse_label(&c.name).expect("validated label"))
        .collect();
    let class_cfg: Vec<(Priority, ClassConfig)> = scenario
        .classes
        .iter()
        .zip(&priorities)
        .map(|(spec, &p)| {
            (
                p,
                ClassConfig {
                    weight: spec.weight,
                    rate: spec.rate_limit,
                },
            )
        })
        .collect();

    // Pre-generated arrivals, merged in deterministic (time, class, seq)
    // order.
    let mut arrivals: Vec<(u64, usize, u64)> = Vec::new();
    for (c, class) in scenario.classes.iter().enumerate() {
        for (seq, t) in class_arrivals(scenario.seed, c, &class.arrival, scenario.duration_ms)
            .into_iter()
            .enumerate()
        {
            arrivals.push((t, c, seq as u64));
        }
    }
    arrivals.sort_unstable();

    let min_workers = scenario.workers as usize;
    let max_workers = match scenario.max_workers {
        0 => min_workers,
        m => m as usize,
    };
    let rate = scenario.service_rounds_per_ms;
    let service_ns = |rounds: u64| -> u64 {
        u64::try_from((rounds as u128 * NS_PER_MS as u128) / rate as u128)
            .unwrap_or(u64::MAX)
            .max(1)
    };

    let mut queue: WfqQueue<SimPayload> = WfqQueue::new(&class_cfg);
    let mut cache = SimCache::new(scenario.cache_capacity);
    let mut acc: Vec<ClassAccum> = scenario
        .classes
        .iter()
        .map(|_| ClassAccum::default())
        .collect();
    // Busy workers as (finish time, submission index, class, admitted-at,
    // arrival ordinal): the index keeps equal-time completions
    // deterministic.
    let mut busy: BinaryHeap<Reverse<(u64, u64, usize, u64, u64)>> = BinaryHeap::new();
    let mut pool_target = min_workers;
    let mut peak_workers = min_workers;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut total_rounds = 0u64;
    let mut ai = 0usize;

    // Sweeps expired jobs, resizes the pool, then feeds free workers — run
    // after every event.
    let mut dispatch_ready =
        |now: u64,
         queue: &mut WfqQueue<SimPayload>,
         busy: &mut BinaryHeap<Reverse<(u64, u64, usize, u64, u64)>>,
         target: &mut usize,
         acc: &mut Vec<ClassAccum>,
         trace: &mut Option<&mut Vec<TraceRecord>>| {
            for (job, late) in queue.take_expired(Duration::from_nanos(now)) {
                acc[job.payload.class_idx].expired += 1;
                push_trace(
                    trace,
                    now,
                    SIM_LANE_ADMIT,
                    TraceEvent::Expired,
                    job.payload.req,
                    u64::try_from(late.as_nanos()).unwrap_or(u64::MAX),
                );
            }
            // The engine's resize rule: an empty queue parks the pool back to
            // its floor; otherwise grow enough to drain the backlog cost
            // within the horizon, clamped to the configured bounds. A busy
            // worker above a shrunken target simply finishes its job (no
            // preemption), exactly like a parked engine worker.
            *target = if queue.queued() == 0 {
                min_workers
            } else {
                let horizon_rounds = rate.saturating_mul(POOL_DRAIN_HORIZON_MS).max(1);
                usize::try_from(queue.backlog_rounds().div_ceil(horizon_rounds))
                    .unwrap_or(usize::MAX)
                    .clamp(min_workers, max_workers)
            };
            peak_workers = peak_workers.max(*target);
            while busy.len() < *target {
                let Some(job) = queue.pop() else { break };
                let c = job.payload.class_idx;
                let req = job.payload.req;
                let wait = now - job.payload.arrived;
                push_trace(
                    trace,
                    now,
                    SIM_LANE_DISPATCH,
                    TraceEvent::Dispatched,
                    req,
                    wait,
                );
                let demand = &demands[c][job.payload.variant];
                let mut rounds = demand.rounds;
                if let Some(fp) = demand.fingerprint {
                    if cache.touch(fp) {
                        cache_hits += 1;
                        push_trace(trace, now, SIM_LANE_DISPATCH, TraceEvent::CacheHit, req, 0);
                    } else {
                        cache_misses += 1;
                        rounds += demand.prep_rounds;
                        push_trace(
                            trace,
                            now,
                            SIM_LANE_DISPATCH,
                            TraceEvent::CacheMiss,
                            req,
                            demand.prep_rounds,
                        );
                    }
                }
                total_rounds += rounds;
                acc[c].wait_ns.push(wait);
                push_trace(
                    trace,
                    now,
                    SIM_LANE_DISPATCH,
                    TraceEvent::SolveBegin,
                    req,
                    rounds,
                );
                busy.push(Reverse((
                    now.saturating_add(service_ns(rounds)),
                    job.index,
                    c,
                    job.payload.arrived,
                    req,
                )));
            }
        };

    while ai < arrivals.len() || !busy.is_empty() {
        let next_completion = busy.peek().map(|Reverse((t, ..))| *t);
        let next_arrival = arrivals.get(ai).map(|&(t, ..)| t);
        let completion_first = match (next_completion, next_arrival) {
            (Some(ct), Some(at)) => ct <= at,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if completion_first {
            let Reverse((now, _index, c, arrived, req)) = busy.pop().expect("peeked");
            acc[c].completed += 1;
            acc[c].e2e_ns.push(now - arrived);
            push_trace(
                &mut trace,
                now,
                SIM_LANE_COMPLETE,
                TraceEvent::SolveEnd,
                req,
                now - arrived,
            );
            dispatch_ready(
                now,
                &mut queue,
                &mut busy,
                &mut pool_target,
                &mut acc,
                &mut trace,
            );
        } else {
            let (now, c, seq) = arrivals[ai];
            // The arrival's ordinal in the merged order is its request id.
            let req = ai as u64;
            ai += 1;
            acc[c].offered += 1;
            // Sweep before the capacity check so expired jobs free their
            // slots first, exactly like the engine's pre-dispatch sweep.
            for (job, late) in queue.take_expired(Duration::from_nanos(now)) {
                acc[job.payload.class_idx].expired += 1;
                push_trace(
                    &mut trace,
                    now,
                    SIM_LANE_ADMIT,
                    TraceEvent::Expired,
                    job.payload.req,
                    u64::try_from(late.as_nanos()).unwrap_or(u64::MAX),
                );
            }
            let full =
                scenario.queue_capacity > 0 && queue.queued() as u64 >= scenario.queue_capacity;
            if full {
                acc[c].rejected += 1;
                push_trace(
                    &mut trace,
                    now,
                    SIM_LANE_ADMIT,
                    TraceEvent::Rejected,
                    req,
                    scenario.queue_capacity,
                );
            } else {
                let priority = priorities[c];
                let variant = (seq as usize) % demands[c].len();
                let cost = demands[c][variant].rounds;
                let deadline = scenario.classes[c].deadline_ms.map(|d| d * NS_PER_MS);
                let infeasible = deadline.is_some_and(|d| {
                    let wait_rounds = queue.expected_wait_rounds(priority, pool_target);
                    wait_rounds > 0 && service_ns(wait_rounds) > d
                });
                if infeasible {
                    acc[c].infeasible += 1;
                    queue.reject_infeasible(priority);
                    push_trace(
                        &mut trace,
                        now,
                        SIM_LANE_ADMIT,
                        TraceEvent::Infeasible,
                        req,
                        0,
                    );
                } else {
                    push_trace(
                        &mut trace,
                        now,
                        SIM_LANE_ADMIT,
                        TraceEvent::Submitted,
                        req,
                        cost,
                    );
                    queue.push(
                        priority,
                        SimPayload {
                            class_idx: c,
                            variant,
                            arrived: now,
                            req,
                        },
                        deadline.map(|d| Duration::from_nanos(now.saturating_add(d))),
                        cost,
                    );
                    push_trace(
                        &mut trace,
                        now,
                        SIM_LANE_ADMIT,
                        TraceEvent::Queued,
                        req,
                        queue.queued() as u64,
                    );
                }
            }
            dispatch_ready(
                now,
                &mut queue,
                &mut busy,
                &mut pool_target,
                &mut acc,
                &mut trace,
            );
        }
    }
    // Every admitted deadline job either dispatched or was swept at some
    // event; anything still queued here would mean the loop exited with
    // idle workers and work pending, which dispatch_ready rules out.
    debug_assert_eq!(queue.queued(), 0);

    let classes: Vec<LoadClassPoint> = scenario
        .classes
        .iter()
        .zip(acc)
        .map(|(spec, a)| LoadClassPoint {
            class: spec.name.clone(),
            offered: a.offered,
            completed: a.completed,
            rejected: a.rejected,
            expired: a.expired,
            infeasible: a.infeasible,
            queue_wait: LatencyPercentiles::from_ns_samples(a.wait_ns),
            end_to_end: LatencyPercentiles::from_ns_samples(a.e2e_ns),
        })
        .collect();
    let trajectory = LoadTrajectory {
        schema: BENCH_SCHEMA.to_string(),
        scenario: scenario.name.clone(),
        seed: scenario.seed,
        duration_ms: scenario.duration_ms,
        offered: classes.iter().map(|c| c.offered).sum(),
        completed: classes.iter().map(|c| c.completed).sum(),
        rejected: classes.iter().map(|c| c.rejected).sum(),
        expired: classes.iter().map(|c| c.expired).sum(),
        infeasible: classes.iter().map(|c| c.infeasible).sum(),
        cache_hits,
        cache_misses,
        total_rounds,
        peak_workers: peak_workers as u64,
        classes,
        ramp: None,
    };
    (trajectory, queue.stats())
}

// ---------------------------------------------------------------------------
// Ramp search.
// ---------------------------------------------------------------------------

/// Bisects the total offered rate for the highest sustainable load (see the
/// [module documentation](self) for the sustainability predicate).
fn ramp_search(scenario: &Scenario, spec: &RampSpec, demands: &[Vec<DemandVariant>]) -> RampResult {
    let base = scenario.nominal_rps();
    let mut lo = spec.min_rps;
    let mut hi = spec.max_rps;
    let mut max_sustainable_rps = 0.0f64;
    let mut probes = Vec::new();
    for _ in 0..spec.iterations {
        let rps = (lo + hi) / 2.0;
        let run = simulate(&scenario.scaled(rps / base), demands);
        let lost = run.rejected + run.expired + run.infeasible;
        let loss_fraction = if run.offered == 0 {
            0.0
        } else {
            lost as f64 / run.offered as f64
        };
        let p99_e2e_ms = run
            .classes
            .iter()
            .map(|c| c.end_to_end.p99_ns)
            .max()
            .unwrap_or(0) as f64
            / NS_PER_MS as f64;
        let sustainable = loss_fraction <= spec.max_loss_fraction
            && (spec.max_p99_ms <= 0.0 || p99_e2e_ms <= spec.max_p99_ms);
        if sustainable {
            if rps > max_sustainable_rps {
                max_sustainable_rps = rps;
            }
            lo = rps;
        } else {
            hi = rps;
        }
        probes.push(RampProbe {
            rps,
            offered: run.offered,
            loss_fraction,
            p99_e2e_ms,
            sustainable,
        });
    }
    RampResult {
        max_sustainable_rps,
        probes,
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Profiles and simulates one scenario (ramp included when configured).
/// `profile_workers` threads share the demand-profiling work; the result is
/// identical for every worker count.
///
/// # Errors
///
/// Returns the [`Scenario::validate`] message of an invalid document.
pub fn run_scenario(scenario: &Scenario, profile_workers: usize) -> Result<LoadTrajectory, String> {
    scenario.validate()?;
    let demands = profile_demands(scenario, profile_workers);
    let mut trajectory = simulate(scenario, &demands);
    if let Some(spec) = &scenario.ramp {
        trajectory.ramp = Some(ramp_search(scenario, spec, &demands));
    }
    Ok(trajectory)
}

/// [`run_scenario`] with lifecycle tracing: additionally returns every
/// [`TraceRecord`] of the scenario's nominal run (ramp probes are simulated
/// untraced — the trace covers the committed trajectory, not the bisection)
/// and the [`WfqQueue`]'s own scheduler counters, the reconciliation target
/// of the telemetry sanity gate. The trajectory is byte-identical to
/// [`run_scenario`]'s, and — like everything in this harness — the trace is
/// a pure function of the scenario document: identical for every
/// `profile_workers` count and across repeated runs.
///
/// # Errors
///
/// Returns the [`Scenario::validate`] message of an invalid document.
#[allow(clippy::type_complexity)]
pub fn run_scenario_traced(
    scenario: &Scenario,
    profile_workers: usize,
) -> Result<(LoadTrajectory, Vec<TraceRecord>, SchedulerStats), String> {
    scenario.validate()?;
    let demands = profile_demands(scenario, profile_workers);
    let mut records = Vec::new();
    let (mut trajectory, stats) = simulate_core(scenario, &demands, Some(&mut records));
    if let Some(spec) = &scenario.ramp {
        trajectory.ramp = Some(ramp_search(scenario, spec, &demands));
    }
    Ok((trajectory, records, stats))
}

/// The `BENCH_load_metrics.json` payload: one metrics snapshot per
/// committed scenario, in library order — the harness's counters
/// republished through the engine's `bcc-metrics/v1` schema so dashboards
/// read one format for engine and harness telemetry alike.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadMetricsBench {
    /// Schema tag (`"bcc-bench/v1"`).
    pub schema: String,
    /// One entry per scenario.
    pub scenarios: Vec<ScenarioMetrics>,
}

/// The metrics snapshot of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMetrics {
    /// The scenario's name.
    pub scenario: String,
    /// The snapshot (schema `bcc-metrics/v1`).
    pub metrics: MetricsSnapshot,
}

/// Renders one trajectory as a [`MetricsSnapshot`]: scenario-level counters
/// under `load.*` (cache counters under the engine's `cache.*` names, the
/// pool peak under `pool.peak`), per-class counters and p99 gauges under
/// `load.<class>.*`. A pure function of the trajectory, so the export is as
/// deterministic as the simulation itself.
pub fn metrics_snapshot(t: &LoadTrajectory) -> MetricsSnapshot {
    let registry = MetricsRegistry::new();
    registry.counter("load.offered").add(t.offered);
    registry.counter("load.completed").add(t.completed);
    registry.counter("load.rejected").add(t.rejected);
    registry.counter("load.expired").add(t.expired);
    registry.counter("load.infeasible").add(t.infeasible);
    registry.counter("load.total_rounds").add(t.total_rounds);
    registry.counter("cache.hits").add(t.cache_hits);
    registry.counter("cache.misses").add(t.cache_misses);
    registry.gauge("pool.peak").set(t.peak_workers);
    for class in &t.classes {
        let name = |metric: &str| format!("load.{}.{metric}", class.class);
        registry.counter(&name("offered")).add(class.offered);
        registry.counter(&name("completed")).add(class.completed);
        registry.counter(&name("rejected")).add(class.rejected);
        registry.counter(&name("expired")).add(class.expired);
        registry.counter(&name("infeasible")).add(class.infeasible);
        registry
            .gauge(&name("wait_p99_ns"))
            .set(class.queue_wait.p99_ns);
        registry
            .gauge(&name("e2e_p99_ns"))
            .set(class.end_to_end.p99_ns);
    }
    registry.snapshot()
}

/// Builds the [`LoadMetricsBench`] artifact from a finished [`LoadBench`].
pub fn load_metrics_bench(bench: &LoadBench) -> LoadMetricsBench {
    LoadMetricsBench {
        schema: BENCH_SCHEMA.to_string(),
        scenarios: bench
            .scenarios
            .iter()
            .map(|t| ScenarioMetrics {
                scenario: t.scenario.clone(),
                metrics: metrics_snapshot(t),
            })
            .collect(),
    }
}

/// Parses and validates one scenario file.
///
/// # Errors
///
/// Propagates filesystem errors; parse and validation failures are reported
/// as [`io::ErrorKind::InvalidData`] with the file path.
pub fn read_scenario(path: &Path) -> io::Result<Scenario> {
    let text = std::fs::read_to_string(path)?;
    let scenario: Scenario = serde_json::from_str(&text).map_err(|e| invalid_data(path, e))?;
    scenario.validate().map_err(|e| invalid_data(path, e))?;
    Ok(scenario)
}

fn invalid_data(path: &Path, e: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {e}", path.display()),
    )
}

/// Reads every `*.json` scenario in `dir`, in file-name order — the
/// committed scenario library.
///
/// # Errors
///
/// Propagates directory and per-file errors ([`read_scenario`]); an empty
/// library is reported as [`io::ErrorKind::NotFound`].
pub fn scenario_library(dir: &Path) -> io::Result<Vec<Scenario>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{}: no *.json scenarios", dir.display()),
        ));
    }
    paths.iter().map(|p| read_scenario(p)).collect()
}

/// Runs the whole scenario library in `dir`, producing the
/// `BENCH_load.json` payload.
///
/// # Errors
///
/// Propagates [`scenario_library`] errors; a scenario the validator accepts
/// never fails to run.
pub fn load_bench(dir: &Path, profile_workers: usize) -> io::Result<LoadBench> {
    let scenarios = scenario_library(dir)?;
    let mut results = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let trajectory = run_scenario(scenario, profile_workers)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        results.push(trajectory);
    }
    Ok(LoadBench {
        schema: BENCH_SCHEMA.to_string(),
        scenarios: results,
    })
}

/// A compact multi-line human summary of one trajectory — what the `load`
/// binary prints per scenario.
pub fn summarize(t: &LoadTrajectory) -> String {
    let mut out = format!(
        "scenario {}: offered {} completed {} rejected {} expired {} infeasible {} \
         (cache {}h/{}m, {} rounds, peak workers {})\n",
        t.scenario,
        t.offered,
        t.completed,
        t.rejected,
        t.expired,
        t.infeasible,
        t.cache_hits,
        t.cache_misses,
        t.total_rounds,
        t.peak_workers
    );
    for c in &t.classes {
        let ms = |ns: u64| ns as f64 / NS_PER_MS as f64;
        out.push_str(&format!(
            "  {:<12} wait p50/p95/p99 {:.3}/{:.3}/{:.3} ms  e2e p50/p95/p99 \
             {:.3}/{:.3}/{:.3} ms  ({} done, {} lost)\n",
            c.class,
            ms(c.queue_wait.p50_ns),
            ms(c.queue_wait.p95_ns),
            ms(c.queue_wait.p99_ns),
            ms(c.end_to_end.p50_ns),
            ms(c.end_to_end.p95_ns),
            ms(c.end_to_end.p99_ns),
            c.completed,
            c.rejected + c.expired + c.infeasible,
        ));
    }
    if let Some(ramp) = &t.ramp {
        out.push_str(&format!(
            "  ramp: max sustainable {:.1} rps over {} probes\n",
            ramp.max_sustainable_rps,
            ramp.probes.len()
        ));
        for p in &ramp.probes {
            out.push_str(&format!(
                "    probe {:.1} rps: loss {:.3} p99 {:.3} ms -> {}\n",
                p.rps,
                p.loss_fraction,
                p.p99_e2e_ms,
                if p.sustainable {
                    "sustainable"
                } else {
                    "collapse"
                }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> Scenario {
        Scenario {
            schema: SCENARIO_SCHEMA.to_string(),
            name: "tiny".to_string(),
            description: "unit-test scenario".to_string(),
            seed: 7,
            duration_ms: 50,
            service_rounds_per_ms: 2_000,
            workers: 2,
            max_workers: 0,
            queue_capacity: 16,
            cache_capacity: 2,
            classes: vec![
                ClassSpec {
                    name: "interactive".to_string(),
                    weight: 4,
                    rate_limit: None,
                    deadline_ms: Some(40),
                    arrival: Arrival::Poisson { rps: 120.0 },
                    request: RequestSpec::Sparsify { n: 8, epsilon: 1.0 },
                },
                ClassSpec {
                    name: "bulk".to_string(),
                    weight: 1,
                    rate_limit: None,
                    deadline_ms: None,
                    arrival: Arrival::Constant { rps: 200.0 },
                    request: RequestSpec::Laplacian {
                        rows: 3,
                        cols: 3,
                        churn: 3,
                    },
                },
            ],
            ramp: None,
        }
    }

    #[test]
    fn arrival_schedules_are_deterministic_and_sorted() {
        let arrival = Arrival::Poisson { rps: 200.0 };
        let a = class_arrivals(7, 0, &arrival, 100);
        let b = class_arrivals(7, 0, &arrival, 100);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(!a.is_empty());
        // A different class index draws a different stream.
        assert_ne!(a, class_arrivals(7, 1, &arrival, 100));
    }

    #[test]
    fn constant_arrivals_are_evenly_spaced() {
        let a = class_arrivals(7, 0, &Arrival::Constant { rps: 100.0 }, 100);
        assert_eq!(a.len(), 10);
        assert_eq!(a[0], 0);
        assert_eq!(a[1], 10 * NS_PER_MS);
    }

    #[test]
    fn bursts_land_inside_their_jitter_window() {
        let a = class_arrivals(
            7,
            0,
            &Arrival::Burst {
                count: 5,
                every_ms: 20,
                jitter_ms: 3,
            },
            40,
        );
        assert_eq!(a.len(), 10);
        for &t in &a[..5] {
            assert!(t < 3 * NS_PER_MS, "first burst within its jitter: {t}");
        }
        for &t in &a[5..] {
            assert!((20 * NS_PER_MS..23 * NS_PER_MS).contains(&t), "{t}");
        }
    }

    #[test]
    fn scaling_an_arrival_scales_its_nominal_rate() {
        let p = Arrival::Poisson { rps: 50.0 };
        assert_eq!(p.scaled(2.0).nominal_rps(), 100.0);
        let b = Arrival::Burst {
            count: 4,
            every_ms: 100,
            jitter_ms: 0,
        };
        assert_eq!(b.nominal_rps(), 40.0);
        assert_eq!(b.scaled(2.0).nominal_rps(), 80.0);
    }

    #[test]
    fn validation_rejects_malformed_scenarios() {
        let good = tiny_scenario();
        assert_eq!(good.validate(), Ok(()));
        let mut bad = good.clone();
        bad.schema = "bcc-load-scenario/v0".to_string();
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.classes[1].name = "interactive".to_string();
        assert!(bad.validate().unwrap_err().contains("duplicate"));
        let mut bad = good.clone();
        bad.classes[0].name = "urgent".to_string();
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.workers = 0;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.max_workers = 1;
        assert!(bad.validate().unwrap_err().contains("max_workers"));
        let mut bad = good.clone();
        bad.ramp = Some(RampSpec {
            min_rps: 10.0,
            max_rps: 5.0,
            max_loss_fraction: 0.1,
            max_p99_ms: 0.0,
            iterations: 4,
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn the_simulation_is_deterministic_and_conserves_arrivals() {
        let scenario = tiny_scenario();
        let a = run_scenario(&scenario, 1).unwrap();
        let b = run_scenario(&scenario, 4).unwrap();
        assert_eq!(a, b, "profiling parallelism must not leak into results");
        assert_eq!(
            a.offered,
            a.completed + a.rejected + a.expired + a.infeasible,
            "every arrival is accounted for exactly once"
        );
        assert!(a.offered > 0);
        assert!(a.completed > 0);
        for class in &a.classes {
            assert_eq!(class.queue_wait.samples + class.expired, {
                // every dispatched job contributed a wait sample
                class.completed + class.expired
            });
            assert_eq!(class.end_to_end.samples, class.completed);
            assert!(class.end_to_end.p50_ns >= class.queue_wait.p50_ns);
        }
    }

    #[test]
    fn an_elastic_pool_absorbs_backlog_a_fixed_floor_cannot() {
        // Under-provision the floor so a backlog forms, then let the pool
        // stretch: the resize rule must actually grow (peak above the
        // floor) and the extra workers can only help the deadline class.
        let mut fixed = tiny_scenario();
        fixed.workers = 1;
        fixed.service_rounds_per_ms = 40;
        let mut elastic = fixed.clone();
        elastic.max_workers = 4;

        let f = run_scenario(&fixed, 1).unwrap();
        let e = run_scenario(&elastic, 1).unwrap();
        assert_eq!(f.peak_workers, 1, "a fixed pool never grows");
        assert!(
            e.peak_workers > 1 && e.peak_workers <= 4,
            "the elastic pool grew within bounds: {e:?}"
        );
        assert!(e.completed >= f.completed);
        assert!(e.expired + e.infeasible <= f.expired + f.infeasible);

        // A ceiling equal to the floor is exactly the fixed pool.
        let mut pinned = fixed.clone();
        pinned.max_workers = pinned.workers;
        let p = run_scenario(&pinned, 1).unwrap();
        assert_eq!(p, f);

        // And the elastic run is itself deterministic.
        assert_eq!(run_scenario(&elastic, 4).unwrap(), e);
    }

    #[test]
    fn fingerprint_churn_defeats_a_small_cache() {
        let mut scenario = tiny_scenario();
        // churn 3 > capacity 2 and round-robin variant selection: every
        // Laplacian dispatch misses.
        scenario.cache_capacity = 2;
        let t = run_scenario(&scenario, 1).unwrap();
        assert!(t.cache_misses > 0);
        assert_eq!(t.cache_hits, 0, "LRU of 2 never holds a rotation of 3");
        // An unbounded cache turns the same traffic into hits.
        scenario.cache_capacity = 0;
        let t = run_scenario(&scenario, 1).unwrap();
        assert!(t.cache_hits > 0);
        assert_eq!(t.cache_misses, 3, "one miss per distinct topology");
    }

    #[test]
    fn an_overloaded_scenario_loses_work_and_a_ramp_brackets_it() {
        let mut scenario = tiny_scenario();
        scenario.service_rounds_per_ms = 40;
        scenario.queue_capacity = 4;
        let t = run_scenario(&scenario, 1).unwrap();
        assert!(
            t.rejected + t.expired + t.infeasible > 0,
            "an under-provisioned plant must shed load: {t:?}"
        );
        scenario.ramp = Some(RampSpec {
            min_rps: 1.0,
            max_rps: 400.0,
            max_loss_fraction: 0.05,
            max_p99_ms: 0.0,
            iterations: 5,
        });
        let t = run_scenario(&scenario, 1).unwrap();
        let ramp = t.ramp.expect("ramp configured");
        assert_eq!(ramp.probes.len(), 5);
        assert!(ramp.max_sustainable_rps < 400.0);
        for probe in &ramp.probes {
            assert!(probe.rps >= 1.0 && probe.rps <= 400.0);
            if probe.sustainable {
                assert!(probe.rps <= ramp.max_sustainable_rps);
            }
        }
    }

    #[test]
    fn scenario_documents_round_trip_through_serde() {
        let mut scenario = tiny_scenario();
        scenario.ramp = Some(RampSpec {
            min_rps: 5.0,
            max_rps: 50.0,
            max_loss_fraction: 0.01,
            max_p99_ms: 25.0,
            iterations: 6,
        });
        scenario.classes[0].rate_limit = Some(RateLimit::new(3, 8));
        let json = serde_json::to_string_pretty(&scenario).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
    }
}
