//! Scenario-driven load-harness runner.
//!
//! Usage:
//!   `cargo run -p bench --bin load`                      — run the whole
//!   committed library (`scenarios/*.json`) and print per-class latency
//!   summaries.
//!   `cargo run -p bench --bin load -- scenarios/smoke.json ...` — run the
//!   named scenario files only.
//!   `... -- --json <path>` — additionally write the results as a
//!   `BENCH_load.json`-shaped [`bench::load::LoadBench`] document.
//!   `... -- --trace <path>` — record every request's lifecycle during the
//!   simulation and write a Chrome trace-event timeline (one process per
//!   scenario; load it in `chrome://tracing` or Perfetto). Tracing never
//!   changes the results — the trajectories stay byte-identical.
//!   `... -- --metrics <path>` — write one `bcc-metrics/v1` snapshot per
//!   scenario as a [`bench::load::LoadMetricsBench`] document.
//!   `... -- --profile-workers <n>` — threads for demand profiling (purely
//!   a wall-clock knob; results are identical for every value).
//!
//! Every run is deterministic: the same scenario files produce byte-identical
//! results (see `bench::load` for the virtual-clock guarantees).

use std::path::PathBuf;
use std::process::exit;

/// Print a readable error and exit non-zero: bad scenario files are an
/// operator mistake, not a bug worth a panic backtrace.
fn fail(message: String) -> ! {
    eprintln!("error: {message}");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut json_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut profile_workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                let path = it
                    .next()
                    .unwrap_or_else(|| fail("--json needs a path".to_string()));
                json_out = Some(PathBuf::from(path));
            }
            "--trace" => {
                let path = it
                    .next()
                    .unwrap_or_else(|| fail("--trace needs a path".to_string()));
                trace_out = Some(PathBuf::from(path));
            }
            "--metrics" => {
                let path = it
                    .next()
                    .unwrap_or_else(|| fail("--metrics needs a path".to_string()));
                metrics_out = Some(PathBuf::from(path));
            }
            "--profile-workers" => {
                let n = it
                    .next()
                    .unwrap_or_else(|| fail("--profile-workers needs a count".to_string()));
                profile_workers = n
                    .parse()
                    .unwrap_or_else(|_| fail(format!("bad --profile-workers value {n:?}")));
            }
            other if !other.starts_with("--") => paths.push(PathBuf::from(other)),
            other => fail(format!("unknown flag {other:?}")),
        }
    }

    let scenarios = if paths.is_empty() {
        let dir = bench::trajectory::repo_root().join("scenarios");
        bench::load::scenario_library(&dir)
            .unwrap_or_else(|e| fail(format!("loading the scenario library failed: {e}")))
    } else {
        paths
            .iter()
            .map(|p| {
                bench::load::read_scenario(p)
                    .unwrap_or_else(|e| fail(format!("reading scenario failed: {e}")))
            })
            .collect()
    };

    let mut results = Vec::with_capacity(scenarios.len());
    let mut traces: Vec<(String, Vec<bcc_core::TraceRecord>)> = Vec::new();
    for scenario in &scenarios {
        let trajectory = if trace_out.is_some() {
            let (trajectory, records, _) =
                bench::load::run_scenario_traced(scenario, profile_workers)
                    .unwrap_or_else(|e| fail(format!("scenario {:?} failed: {e}", scenario.name)));
            traces.push((scenario.name.clone(), records));
            trajectory
        } else {
            bench::load::run_scenario(scenario, profile_workers)
                .unwrap_or_else(|e| fail(format!("scenario {:?} failed: {e}", scenario.name)))
        };
        print!("{}", bench::load::summarize(&trajectory));
        results.push(trajectory);
    }

    if let Some(path) = trace_out {
        let json = bcc_core::telemetry::chrome_trace_json(&traces);
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|e| fail(format!("writing {} failed: {e}", path.display())));
        let events: usize = traces.iter().map(|(_, r)| r.len()).sum();
        println!("wrote {} ({events} trace events)", path.display());
    }

    let payload = bench::load::LoadBench {
        schema: bench::trajectory::BENCH_SCHEMA.to_string(),
        scenarios: results,
    };

    if let Some(path) = metrics_out {
        let metrics = bench::load::load_metrics_bench(&payload);
        let json = serde_json::to_string_pretty(&metrics).expect("LoadMetricsBench serializes");
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|e| fail(format!("writing {} failed: {e}", path.display())));
        println!("wrote {}", path.display());
    }

    if let Some(path) = json_out {
        let json = serde_json::to_string_pretty(&payload).expect("LoadBench serializes");
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|e| fail(format!("writing {} failed: {e}", path.display())));
        println!("wrote {}", path.display());
    }
}
