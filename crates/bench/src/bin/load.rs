//! Scenario-driven load-harness runner.
//!
//! Usage:
//!   `cargo run -p bench --bin load`                      — run the whole
//!   committed library (`scenarios/*.json`) and print per-class latency
//!   summaries.
//!   `cargo run -p bench --bin load -- scenarios/smoke.json ...` — run the
//!   named scenario files only.
//!   `... -- --json <path>` — additionally write the results as a
//!   `BENCH_load.json`-shaped [`bench::load::LoadBench`] document.
//!   `... -- --profile-workers <n>` — threads for demand profiling (purely
//!   a wall-clock knob; results are identical for every value).
//!
//! Every run is deterministic: the same scenario files produce byte-identical
//! results (see `bench::load` for the virtual-clock guarantees).

use std::path::PathBuf;
use std::process::exit;

/// Print a readable error and exit non-zero: bad scenario files are an
/// operator mistake, not a bug worth a panic backtrace.
fn fail(message: String) -> ! {
    eprintln!("error: {message}");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut json_out: Option<PathBuf> = None;
    let mut profile_workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                let path = it
                    .next()
                    .unwrap_or_else(|| fail("--json needs a path".to_string()));
                json_out = Some(PathBuf::from(path));
            }
            "--profile-workers" => {
                let n = it
                    .next()
                    .unwrap_or_else(|| fail("--profile-workers needs a count".to_string()));
                profile_workers = n
                    .parse()
                    .unwrap_or_else(|_| fail(format!("bad --profile-workers value {n:?}")));
            }
            other if !other.starts_with("--") => paths.push(PathBuf::from(other)),
            other => fail(format!("unknown flag {other:?}")),
        }
    }

    let scenarios = if paths.is_empty() {
        let dir = bench::trajectory::repo_root().join("scenarios");
        bench::load::scenario_library(&dir)
            .unwrap_or_else(|e| fail(format!("loading the scenario library failed: {e}")))
    } else {
        paths
            .iter()
            .map(|p| {
                bench::load::read_scenario(p)
                    .unwrap_or_else(|e| fail(format!("reading scenario failed: {e}")))
            })
            .collect()
    };

    let mut results = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let trajectory = bench::load::run_scenario(scenario, profile_workers)
            .unwrap_or_else(|e| fail(format!("scenario {:?} failed: {e}", scenario.name)));
        print!("{}", bench::load::summarize(&trajectory));
        results.push(trajectory);
    }

    if let Some(path) = json_out {
        let payload = bench::load::LoadBench {
            schema: bench::trajectory::BENCH_SCHEMA.to_string(),
            scenarios: results,
        };
        let json = serde_json::to_string_pretty(&payload).expect("LoadBench serializes");
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|e| fail(format!("writing {} failed: {e}", path.display())));
        println!("wrote {}", path.display());
    }
}
