//! Experiment runner: regenerates the tables recorded in EXPERIMENTS.md.
//!
//! Usage: `cargo run -p bench --release --bin expts -- [e1|e2|...|e10|a1|a2|all] [--full]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = !args.iter().any(|a| a == "--full");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids = if ids.is_empty() { vec!["all"] } else { ids };
    for id in ids {
        for table in bench::run_experiment(id, quick) {
            println!("{table}");
        }
    }
}
