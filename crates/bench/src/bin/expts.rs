//! Experiment runner: regenerates the tables recorded in EXPERIMENTS.md and
//! the machine-readable `BENCH_*.json` cost trajectories.
//!
//! Usage:
//!   `cargo run -p bench --release --bin expts -- [e1|e2|...|e11|a1|a2|all] [--full]`
//!   `cargo run -p bench --release --bin expts -- --quick-json`  (CI)
//!   `cargo run -p bench --release --bin expts -- --full-json`
//!
//! The `--*-json` modes write `BENCH_pipelines.json` and `BENCH_batch.json`
//! to the repository root (schema documented in `bench::trajectory`) and
//! print the written paths.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick_json = args.iter().any(|a| a == "--quick-json");
    let full_json = args.iter().any(|a| a == "--full-json");
    if quick_json || full_json {
        let root = bench::trajectory::repo_root();
        let written = bench::trajectory::write_bench_json(&root, 2022, quick_json)
            .unwrap_or_else(|e| panic!("writing BENCH_*.json failed: {e}"));
        for path in written {
            println!("wrote {}", path.display());
        }
        return;
    }
    let quick = !args.iter().any(|a| a == "--full");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids = if ids.is_empty() { vec!["all"] } else { ids };
    for id in ids {
        for table in bench::run_experiment(id, quick) {
            println!("{table}");
        }
    }
}
