//! Experiment runner: regenerates the tables recorded in EXPERIMENTS.md and
//! the machine-readable `BENCH_*.json` cost trajectories.
//!
//! Usage:
//!   `cargo run -p bench --release --bin expts -- [e1|e2|...|e11|a1|a2|all] [--full]`
//!   `cargo run -p bench --release --bin expts -- --quick-json`  (CI)
//!   `cargo run -p bench --release --bin expts -- --full-json`
//!   `cargo run -p bench --release --bin expts -- --check-trend` (CI)
//!   `cargo run -p bench --release --bin expts -- --load scenarios/smoke.json`
//!   `cargo run -p bench --release --bin expts -- --metrics`
//!
//! The `--*-json` modes write `BENCH_pipelines.json`, `BENCH_batch.json`,
//! `BENCH_stream.json`, `BENCH_load.json` and `BENCH_load_metrics.json` to
//! the repository root (schema documented in `bench::trajectory` and
//! `bench::load`) and print the written paths.
//!
//! `--load <scenario.json>` runs one declarative load scenario through the
//! deterministic virtual-clock harness (`bench::load`) and prints its
//! per-class latency percentiles (the standalone `load` binary runs whole
//! scenario sets and can emit JSON, Chrome traces and metrics snapshots).
//!
//! `--metrics` runs the committed smoke scenario and prints its
//! `bcc-metrics/v1` snapshot as JSON — a quick way to eyeball the
//! telemetry export without writing any files.
//!
//! `--check-trend` regenerates the quick trajectories in memory, compares
//! them against the committed `BENCH_*.json` files without touching them,
//! and exits non-zero on schema drift, disappeared trajectory points, a
//! more-than-2x regression in a tracked counter, a stale committed metrics
//! artifact, or a lifecycle trace that fails to reconcile with the
//! scheduler's dispatch counters (the telemetry sanity gate).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick_json = args.iter().any(|a| a == "--quick-json");
    let full_json = args.iter().any(|a| a == "--full-json");
    if let Some(pos) = args.iter().position(|a| a == "--load") {
        let path = args
            .get(pos + 1)
            .unwrap_or_else(|| panic!("--load needs a scenario path"));
        let scenario = bench::load::read_scenario(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("reading scenario failed: {e}"));
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let trajectory = bench::load::run_scenario(&scenario, workers)
            .unwrap_or_else(|e| panic!("scenario {:?} failed: {e}", scenario.name));
        print!("{}", bench::load::summarize(&trajectory));
        return;
    }
    if args.iter().any(|a| a == "--metrics") {
        let path = bench::trajectory::repo_root()
            .join("scenarios")
            .join("smoke.json");
        let scenario = bench::load::read_scenario(&path)
            .unwrap_or_else(|e| panic!("reading scenario failed: {e}"));
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let trajectory = bench::load::run_scenario(&scenario, workers)
            .unwrap_or_else(|e| panic!("scenario {:?} failed: {e}", scenario.name));
        let snapshot = bench::load::metrics_snapshot(&trajectory);
        let json = serde_json::to_string_pretty(&snapshot).expect("MetricsSnapshot serializes");
        println!("{json}");
        return;
    }
    if args.iter().any(|a| a == "--check-trend") {
        let root = bench::trajectory::repo_root();
        let issues = bench::trajectory::check_trend(&root, 2022, true)
            .unwrap_or_else(|e| panic!("bench trend check could not run: {e}"));
        if issues.is_empty() {
            println!("bench trend check OK: committed BENCH_*.json are representative");
            return;
        }
        eprintln!("bench trend check FAILED ({} issue(s)):", issues.len());
        for issue in &issues {
            eprintln!("  - {issue}");
        }
        eprintln!(
            "if the cost change is intentional, regenerate the artifacts with \
             `cargo run -p bench --release --bin expts -- --quick-json` and commit them"
        );
        std::process::exit(1);
    }
    if quick_json || full_json {
        let root = bench::trajectory::repo_root();
        let written = bench::trajectory::write_bench_json(&root, 2022, quick_json)
            .unwrap_or_else(|e| panic!("writing BENCH_*.json failed: {e}"));
        for path in written {
            println!("wrote {}", path.display());
        }
        // One-line cost-model calibration summary for the CI job log, read
        // back from the artifact just written (no second trajectory run).
        let stream: bench::trajectory::StreamTrajectory = serde_json::from_str(
            &std::fs::read_to_string(root.join("BENCH_stream.json"))
                .expect("BENCH_stream.json was just written"),
        )
        .expect("BENCH_stream.json parses back");
        println!("{}", bench::trajectory::estimation_summary(&stream));
        return;
    }
    let quick = !args.iter().any(|a| a == "--full");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids = if ids.is_empty() { vec!["all"] } else { ids };
    for id in ids {
        for table in bench::run_experiment(id, quick) {
            println!("{table}");
        }
    }
}
