//! Experiment harness for EXPERIMENTS.md.
//!
//! Every experiment id (E1–E11, A1–A2) from DESIGN.md §5 has a function here
//! that generates its workload, runs the algorithms and returns printable
//! rows. The `expts` binary prints them as tables; the Criterion benches in
//! `benches/` wrap the same functions for timing.
//!
//! Machine-readable cost trajectories live in [`trajectory`]: running
//! `cargo run -p bench --release --bin expts -- --quick-json` (or
//! `--full-json`) writes the `BENCH_*.json` artifacts to the repository
//! root. The JSON schemas are documented in [`trajectory`] and
//! golden-snapshot-tested so downstream consumers can rely on the field
//! names across PRs.
//!
//! The declarative load harness lives in [`load`]: scenario documents in
//! `scenarios/` drive a deterministic virtual-clock simulation of the
//! streaming service layer (`cargo run -p bench --bin load`), producing the
//! per-class latency percentiles and ramp-search results of
//! `BENCH_load.json`.

#![forbid(unsafe_code)]

pub mod load;
pub mod trajectory;

use bcc_core::prelude::*;
use bcc_core::{graph::generators, linalg::vector};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A generic table: header plus rows of equal length.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Experiment identifier (e.g. "E1").
    pub id: String,
    /// One-line description.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:>width$}  ", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

fn fmt_f(v: f64) -> String {
    if v.abs() >= 1000.0 || (v != 0.0 && v.abs() < 0.01) {
        format!("{v:.2e}")
    } else {
        format!("{v:.3}")
    }
}

/// E1 — Lemma 3.1/3.2: spanner stretch, size and rounds versus `n` and `k`.
pub fn e1_spanner(sizes: &[usize], ks: &[usize], seed: u64) -> Table {
    let mut table = Table::new(
        "E1",
        "Baswana–Sen spanner: stretch ≤ 2k−1, |F⁺| = O(k·n^{1+1/k}), BC rounds",
        &["n", "m", "k", "edges", "bound", "stretch", "2k-1", "rounds"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for &n in sizes {
        let g = generators::random_connected(n, 0.4, 8, &mut rng);
        for &k in ks {
            let mut net =
                Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap();
            let out = baswana_sen_spanner(
                &mut net,
                &g,
                SpannerParams {
                    k,
                    seed: seed + k as u64,
                },
            );
            let spanner = g.subgraph(&out.f_plus);
            let stretch =
                bcc_core::spanner::verify::max_stretch(&spanner, &g).unwrap_or(f64::INFINITY);
            let bound = bcc_core::spanner::verify::expected_size_bound(n, k, 2.0);
            table.push(vec![
                n.to_string(),
                g.m().to_string(),
                k.to_string(),
                out.f_plus.len().to_string(),
                fmt_f(bound),
                fmt_f(stretch),
                (2 * k - 1).to_string(),
                net.ledger().total_rounds().to_string(),
            ]);
        }
    }
    table
}

/// E2 — Lemma 3.3: ad-hoc vs a-priori sampling produce statistically
/// indistinguishable sparsifiers (edge-count and per-edge marginals).
pub fn e2_equivalence(trials: usize, seed: u64) -> Table {
    let mut table = Table::new(
        "E2",
        "Ad-hoc (Alg. 5) vs a-priori (Alg. 4) sampling: edge marginals over repeated runs",
        &["statistic", "ad-hoc", "a-priori", "abs diff"],
    );
    let g = generators::complete(14);
    let cfg = SparsifierConfig::laboratory(g.n(), g.m(), 1.0, seed)
        .with_t(1)
        .with_k(2)
        .with_iterations(3);
    let mut size_adhoc = 0.0;
    let mut size_apriori = 0.0;
    let mut marg_adhoc = vec![0.0f64; g.m()];
    let mut marg_apriori = vec![0.0f64; g.m()];
    for t in 0..trials {
        let cfg_t = SparsifierConfig {
            seed: seed + 1000 + t as u64,
            ..cfg
        };
        let mut net1 =
            Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap();
        let adhoc = bcc_core::sparsifier::sparsify_ad_hoc(&mut net1, &g, &cfg_t);
        let mut net2 =
            Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap();
        let apriori = bcc_core::sparsifier::sparsify_a_priori(&mut net2, &g, &cfg_t);
        size_adhoc += adhoc.sparsifier.m() as f64 / trials as f64;
        size_apriori += apriori.sparsifier.m() as f64 / trials as f64;
        for &e in &adhoc.edge_origin {
            marg_adhoc[e] += 1.0 / trials as f64;
        }
        for &e in &apriori.edge_origin {
            marg_apriori[e] += 1.0 / trials as f64;
        }
    }
    let mean_marg_diff: f64 = marg_adhoc
        .iter()
        .zip(&marg_apriori)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / g.m() as f64;
    table.push(vec![
        "mean sparsifier size".into(),
        fmt_f(size_adhoc),
        fmt_f(size_apriori),
        fmt_f((size_adhoc - size_apriori).abs()),
    ]);
    table.push(vec![
        "mean per-edge keep probability".into(),
        fmt_f(marg_adhoc.iter().sum::<f64>() / g.m() as f64),
        fmt_f(marg_apriori.iter().sum::<f64>() / g.m() as f64),
        fmt_f(mean_marg_diff),
    ]);
    table
}

/// E3 — Theorem 1.2: sparsifier size, certified ε and BC rounds.
pub fn e3_sparsifier(sizes: &[usize], epsilons: &[f64], seed: u64) -> Table {
    let mut table = Table::new(
        "E3",
        "Spectral sparsifier (Alg. 5): size, certified (1±ε), Broadcast CONGEST rounds",
        &[
            "graph",
            "n",
            "m",
            "eps target",
            "|H|",
            "eps achieved",
            "rounds",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for &n in sizes {
        let families: Vec<(&str, Graph)> = vec![
            (
                "erdos-renyi",
                generators::random_connected(n, 0.4, 8, &mut rng),
            ),
            ("barbell", generators::barbell(n / 2, 1)),
        ];
        for (name, g) in families {
            for &eps in epsilons {
                // Note: at these instance sizes the laboratory bundle size
                // t = Θ(log²n/ε²) already exceeds what is needed to swallow
                // the whole graph, so the sparsifier is exact (ε ≈ 0) and no
                // edge reduction is visible; the reduction regime is exercised
                // by E1/A1 and the bcc-sparsifier unit tests with smaller t.
                let cfg = SparsifierConfig::laboratory(g.n(), g.m().max(2), eps, seed);
                let mut net =
                    Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists())
                        .unwrap();
                let out = bcc_core::sparsifier::sparsify_ad_hoc(&mut net, &g, &cfg);
                let achieved = bcc_core::sparsifier::quality::achieved_epsilon(&g, &out.sparsifier);
                table.push(vec![
                    name.into(),
                    g.n().to_string(),
                    g.m().to_string(),
                    fmt_f(eps),
                    out.sparsifier.m().to_string(),
                    fmt_f(achieved),
                    net.ledger().total_rounds().to_string(),
                ]);
            }
        }
    }
    table
}

/// E4 — Theorem 1.3 / Corollary 2.4: Laplacian-solver iterations and error
/// versus the requested accuracy ε.
pub fn e4_laplacian(seed: u64) -> Table {
    let mut table = Table::new(
        "E4",
        "BCC Laplacian solver: O(log 1/ε) iterations, error ≤ ε in the L-norm",
        &["graph", "eps", "iterations", "solve rounds", "rel error"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for (name, g) in [
        ("grid 6x6", generators::grid(6, 6)),
        (
            "erdos-renyi n=40",
            generators::random_connected(40, 0.3, 8, &mut rng),
        ),
    ] {
        let cfg = SparsifierConfig::laboratory(g.n(), g.m(), 0.5, seed)
            .with_t(6)
            .with_k(2);
        let mut net = Network::clique(ModelConfig::bcc(), g.n());
        let solver = LaplacianSolver::preprocess(&mut net, &g, &cfg);
        let raw: Vec<f64> = (0..g.n()).map(|_| rng.gen::<f64>() - 0.5).collect();
        let b = vector::remove_mean(&raw);
        for eps in [0.5, 1e-2, 1e-4, 1e-8] {
            let solve = solver.solve(&mut net, &b, eps);
            let err = solver.relative_error(&b, &solve.solution);
            table.push(vec![
                name.into(),
                fmt_f(eps),
                solve.iterations.to_string(),
                solve.rounds.to_string(),
                fmt_f(err),
            ]);
        }
    }
    table
}

/// E5 — Theorem 2.3: preconditioned Chebyshev needs O(√κ·log(1/ε)) iterations.
pub fn e5_chebyshev() -> Table {
    let mut table = Table::new(
        "E5",
        "Preconditioned Chebyshev: iterations vs κ and ε (prescribed count and measured error)",
        &["kappa", "eps", "iterations", "rel residual"],
    );
    for kappa in [2.0, 4.0, 16.0, 64.0] {
        for eps in [1e-2, 1e-6] {
            // Diagonal test pair: A = diag(uniform in [1, kappa]), B = kappa·I ⇒ A ≼ B ≼ κ·A.
            let n = 64;
            let mut rng = ChaCha8Rng::seed_from_u64(kappa as u64 + (1.0 / eps) as u64);
            let diag: Vec<f64> = (0..n)
                .map(|_| 1.0 + (kappa - 1.0) * rng.gen::<f64>())
                .collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
            let apply_a =
                |x: &[f64]| -> Vec<f64> { x.iter().zip(&diag).map(|(v, d)| v * d).collect() };
            let solve_b = |r: &[f64]| -> Vec<f64> { r.iter().map(|v| v / kappa).collect() };
            let result = bcc_core::linalg::chebyshev::preconditioned_chebyshev(
                apply_a, solve_b, kappa, &b, eps,
            );
            let rel = result.residual_norm / vector::norm2(&b);
            table.push(vec![
                fmt_f(kappa),
                fmt_f(eps),
                result.iterations.to_string(),
                fmt_f(rel),
            ]);
        }
    }
    table
}

/// E6 — Lemma 4.5: leverage-score approximation quality vs sketch accuracy η.
pub fn e6_leverage(seed: u64) -> Table {
    let mut table = Table::new(
        "E6",
        "Leverage scores via shared-seed JL sketches: mean relative error vs η",
        &[
            "m",
            "n",
            "eta",
            "sketch dim k",
            "mean rel err",
            "max rel err",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = 60;
    let n = 8;
    let mut triplets = Vec::new();
    for r in 0..m {
        for c in 0..n {
            if rng.gen::<f64>() < 0.5 {
                triplets.push((r, c, rng.gen::<f64>() * 2.0 - 1.0));
            }
        }
        triplets.push((r, r % n, 1.0 + rng.gen::<f64>()));
    }
    let a = bcc_core::linalg::CsrMatrix::from_triplets(m, n, &triplets);
    let scaled = bcc_core::lp::ScaledMatrix::new(&a, vec![1.0; m]);
    let exact = bcc_core::lp::leverage::exact_leverage_scores(&scaled);
    for eta in [0.75, 0.5, 0.25] {
        let mut net = Network::clique(ModelConfig::bcc(), n);
        let options = bcc_core::lp::leverage::LeverageOptions::new(eta, seed);
        let approx = bcc_core::lp::leverage::compute_leverage_scores(
            &mut net,
            &scaled,
            &options,
            &bcc_core::lp::DenseGramSolver::new(),
        )
        .expect("dense gram solves of a full-rank sketch matrix succeed");
        let rels: Vec<f64> = exact
            .iter()
            .zip(&approx)
            .filter(|(e, _)| **e > 1e-9)
            .map(|(e, ap)| (e - ap).abs() / e)
            .collect();
        let mean = rels.iter().sum::<f64>() / rels.len() as f64;
        let max = rels.iter().cloned().fold(0.0f64, f64::max);
        let k = bcc_core::linalg::JlSketch::dimension_for(m, eta);
        table.push(vec![
            m.to_string(),
            n.to_string(),
            fmt_f(eta),
            k.to_string(),
            fmt_f(mean),
            fmt_f(max),
        ]);
    }
    table
}

/// E7 — Lemma 4.10: mixed-norm-ball projection optimality and round counts.
pub fn e7_mixed_ball(seed: u64) -> Table {
    let mut table = Table::new(
        "E7",
        "Mixed-norm-ball projection: value vs best random feasible point, rounds vs m",
        &["m", "projection value", "best random value", "rounds"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for m in [16usize, 128, 1024, 4096] {
        let a: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        let l: Vec<f64> = (0..m).map(|_| 0.05 + rng.gen::<f64>()).collect();
        let mut net = Network::clique(ModelConfig::bcc(), 64);
        let projection = bcc_core::lp::project_mixed_ball(&mut net, &a, &l);
        let mut best_random: f64 = 0.0;
        for _ in 0..200 {
            let dir: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let norm = vector::norm2(&dir);
            let inf: f64 = dir
                .iter()
                .zip(&l)
                .map(|(x, li)| x.abs() / li)
                .fold(0.0, f64::max);
            let scale = 0.999 / (norm + inf).max(1e-12);
            let value: f64 = dir.iter().zip(&a).map(|(d, ai)| d * scale * ai).sum();
            best_random = best_random.max(value);
        }
        table.push(vec![
            m.to_string(),
            fmt_f(projection.value),
            fmt_f(best_random),
            net.ledger().total_rounds().to_string(),
        ]);
    }
    table
}

/// E8 / A2 — Theorem 1.4: LP path-following iteration counts, Lewis vs
/// uniform weights, as the instance grows.
pub fn e8_lp_iterations(sizes: &[usize], seed: u64) -> Table {
    let mut table = Table::new(
        "E8",
        "LP solver iterations: Lewis weights (√n shape) vs uniform weights (√m shape)",
        &[
            "|V|",
            "n (constraints)",
            "m (vars)",
            "iters Lewis",
            "iters uniform",
            "sqrt n",
            "sqrt m",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for &v in sizes {
        let instance = generators::random_flow_instance(v, 0.3, 3, &mut rng);
        let flow_lp =
            bcc_core::flow::build_flow_lp(&instance, &bcc_core::flow::FlowLpConfig::default());
        let solver = bcc_core::flow::SddGramSolver::new(1e-8);
        let mut iterations = Vec::new();
        for uniform in [false, true] {
            let mut options = LpOptions::new(1e-2, flow_lp.lp.m(), seed);
            if uniform {
                options = options.with_uniform_weights();
            } else {
                let mut lewis = bcc_core::lp::lewis::LewisOptions::laboratory(flow_lp.lp.m(), seed);
                lewis.iterations = 4;
                lewis.max_sketch_dimension = Some(8);
                options.strategy =
                    bcc_core::lp::WeightStrategy::RegularizedLewis { options: lewis };
                options.path.weight_refresh_sweeps = 1;
            }
            let mut net = Network::clique(ModelConfig::bcc(), instance.graph.n());
            let solution = lp_solve(
                &mut net,
                &flow_lp.lp,
                &flow_lp.interior_point,
                &options,
                &solver,
            );
            iterations.push(solution.path_iterations());
        }
        table.push(vec![
            v.to_string(),
            flow_lp.lp.n().to_string(),
            flow_lp.lp.m().to_string(),
            iterations[0].to_string(),
            iterations[1].to_string(),
            fmt_f((flow_lp.lp.n() as f64).sqrt()),
            fmt_f((flow_lp.lp.m() as f64).sqrt()),
        ]);
    }
    table
}

/// E9 — Theorem 1.1: exact min-cost max-flow vs the SSP baseline, with round
/// counts.
pub fn e9_flow(sizes: &[usize], seed: u64) -> Table {
    let mut table = Table::new(
        "E9",
        "Min-cost max-flow (BCC) vs SSP baseline: exactness and rounds",
        &[
            "|V|",
            "|E|",
            "value bcc",
            "value ssp",
            "cost bcc",
            "cost ssp",
            "exact",
            "rounds",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for &v in sizes {
        let instance = generators::random_flow_instance(v, 0.25, 3, &mut rng);
        let baseline = ssp_min_cost_max_flow(&instance);
        let mut net = Network::clique(ModelConfig::bcc(), instance.graph.n());
        let result = bcc_core::flow::min_cost_max_flow_bcc(
            &mut net,
            &instance,
            &McmfOptions {
                seed,
                ..McmfOptions::default()
            },
        );
        let exact = result.flow.value == baseline.value && result.flow.cost == baseline.cost;
        table.push(vec![
            v.to_string(),
            instance.graph.m().to_string(),
            result.flow.value.to_string(),
            baseline.value.to_string(),
            result.flow.cost.to_string(),
            baseline.cost.to_string(),
            exact.to_string(),
            result.rounds.to_string(),
        ]);
    }
    table
}

/// Drives one theorem pipeline generically — the harness does not know which
/// theorem is underneath.
fn drive<A: bcc_core::BccAlgorithm>(
    algorithm: &A,
    session: &mut bcc_core::Session,
    input: &A::Input,
) -> bcc_core::Outcome<A::Output> {
    algorithm
        .run(session, input)
        .unwrap_or_else(|e| panic!("pipeline {} rejected its input: {e}", algorithm.name()))
}

/// E10 — the Figure-1 pipeline end-to-end with its per-phase round breakdown,
/// every stage driven through the generic [`bcc_core::BccAlgorithm`] trait on
/// one shared [`bcc_core::Session`].
pub fn e10_pipeline(seed: u64) -> Table {
    let mut table = Table::new(
        "E10",
        "Figure-1 pipeline: per-stage round counts on one seeded instance",
        &["stage", "rounds"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut session = bcc_core::Session::builder().seed(seed).build();
    let g = generators::random_connected(32, 0.3, 4, &mut rng);

    let sparsify = drive(
        &bcc_core::SparsifyAlgorithm { epsilon: 0.5 },
        &mut session,
        &g,
    );
    table.push(vec![
        "spectral sparsifier (BC)".into(),
        sparsify.report.total_rounds.to_string(),
    ]);

    let mut b = vec![0.0; g.n()];
    b[0] = 1.0;
    b[g.n() - 1] = -1.0;
    let problem = bcc_core::LaplacianProblem { graph: g, b };
    let laplacian = drive(
        &bcc_core::LaplacianAlgorithm { epsilon: 1e-6 },
        &mut session,
        &problem,
    );
    table.push(vec![
        "laplacian solver (BCC)".into(),
        laplacian.report.total_rounds.to_string(),
    ]);

    let instance = generators::random_flow_instance(6, 0.3, 3, &mut rng);
    let flow = drive(&bcc_core::McmfAlgorithm, &mut session, &instance);
    table.push(vec![
        "min-cost max-flow (BCC)".into(),
        flow.report.total_rounds.to_string(),
    ]);
    table.push(vec![
        "  of which LP path iterations".into(),
        flow.value.path_iterations.to_string(),
    ]);
    table.push(vec![
        "session cumulative".into(),
        session.cumulative_report().total_rounds.to_string(),
    ]);
    table
}

/// E11 — batch serving: one mixed workload served by the `BatchEngine` cold
/// (every distinct topology pays sparsifier preprocessing) and warm (the
/// fingerprint-keyed cache serves every prepared solver), with the
/// amortization visible in the round totals.
pub fn e11_batch(seed: u64, quick: bool) -> Table {
    let mut table = Table::new(
        "E11",
        "Batch engine: cold vs warm cache on one mixed workload (rounds, cache traffic)",
        &[
            "run",
            "requests",
            "failures",
            "cache hits",
            "cache misses",
            "preprocessing rounds",
            "total rounds",
        ],
    );
    let t = trajectory::batch_trajectory(seed, quick);
    for (name, report) in [("cold", &t.cold), ("warm", &t.warm)] {
        let preprocessing: u64 = report
            .preprocessing
            .iter()
            .filter(|p| !p.cached)
            .map(|p| p.report.total_rounds)
            .sum();
        table.push(vec![
            name.into(),
            report.requests.to_string(),
            report.failures.to_string(),
            report.cache_hits.to_string(),
            report.cache_misses.to_string(),
            preprocessing.to_string(),
            report.total.total_rounds.to_string(),
        ]);
    }
    table
}

/// A1 — ablation: fixed `t` (Kyng et al.) vs growing `t` (original Koutis–Xu)
/// bundle sizes.
pub fn a1_bundle_ablation(seed: u64) -> Table {
    let mut table = Table::new(
        "A1",
        "Ablation: sparsifier size with fixed t (Kyng et al.) vs t growing per iteration (Koutis–Xu)",
        &["n", "m", "|H| fixed t", "|H| growing t"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for n in [24usize, 40] {
        let g = generators::random_connected(n, 0.5, 4, &mut rng);
        let base = SparsifierConfig::laboratory(g.n(), g.m(), 1.0, seed)
            .with_t(2)
            .with_k(3);
        let mut net1 =
            Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap();
        let fixed = bcc_core::sparsifier::sparsify_ad_hoc(&mut net1, &g, &base);
        // "Growing t": emulate Koutis–Xu by using t scaled with the iteration
        // count (a larger constant bundle here).
        let grown = SparsifierConfig {
            t: base.t * base.iterations.max(1),
            ..base
        };
        let mut net2 =
            Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap();
        let growing = bcc_core::sparsifier::sparsify_ad_hoc(&mut net2, &g, &grown);
        table.push(vec![
            n.to_string(),
            g.m().to_string(),
            fixed.sparsifier.m().to_string(),
            growing.sparsifier.m().to_string(),
        ]);
    }
    table
}

/// Runs an experiment by its identifier ("e1" … "e11", "a1", "a2", "all"),
/// using quick default parameters.
pub fn run_experiment(id: &str, quick: bool) -> Vec<Table> {
    let seed = 2022;
    match id.to_ascii_lowercase().as_str() {
        "e1" => vec![e1_spanner(
            if quick { &[32, 64] } else { &[64, 128, 256] },
            &[2, 3, 4],
            seed,
        )],
        "e2" => vec![e2_equivalence(if quick { 40 } else { 400 }, seed)],
        "e3" => vec![e3_sparsifier(
            if quick { &[24, 40] } else { &[64, 128] },
            &[0.5, 1.0],
            seed,
        )],
        "e4" => vec![e4_laplacian(seed)],
        "e5" => vec![e5_chebyshev()],
        "e6" => vec![e6_leverage(seed)],
        "e7" => vec![e7_mixed_ball(seed)],
        "e8" | "a2" => vec![e8_lp_iterations(
            if quick { &[5, 6] } else { &[5, 6, 8] },
            seed,
        )],
        "e9" => vec![e9_flow(if quick { &[5, 6] } else { &[5, 6, 8] }, seed)],
        "e10" => vec![e10_pipeline(seed)],
        "e11" => vec![e11_batch(seed, quick)],
        "a1" => vec![a1_bundle_ablation(seed)],
        "all" => {
            let mut tables = Vec::new();
            for id in [
                "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "a1",
            ] {
                tables.extend(run_experiment(id, quick));
            }
            tables
        }
        other => panic!("unknown experiment id: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_produce_rows() {
        for id in ["e5", "e7"] {
            let tables = run_experiment(id, true);
            assert!(!tables.is_empty());
            for t in tables {
                assert!(!t.rows.is_empty());
                let printed = format!("{t}");
                assert!(printed.contains(&t.id));
            }
        }
    }

    #[test]
    #[should_panic]
    fn unknown_experiment_panics() {
        let _ = run_experiment("e99", true);
    }
}
