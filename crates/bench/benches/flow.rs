//! Criterion bench for experiment E9 (min-cost max-flow end to end).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_flow");
    group.sample_size(10);
    group.bench_function("e9_mcmf_n5", |b| b.iter(|| bench::e9_flow(&[5], 1)));
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
