//! Criterion bench for experiments E4/E5 (Laplacian solving and Chebyshev).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_laplacian(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_e5_laplacian");
    group.sample_size(10);
    group.bench_function("e4_laplacian_solver", |b| b.iter(|| bench::e4_laplacian(1)));
    group.bench_function("e5_chebyshev", |b| b.iter(bench::e5_chebyshev));
    group.finish();
}

criterion_group!(benches, bench_laplacian);
criterion_main!(benches);
