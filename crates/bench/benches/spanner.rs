//! Criterion bench for experiment E1 (spanner construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_spanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_spanner");
    group.sample_size(10);
    for n in [32usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| bench::e1_spanner(&[n], &[3], 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spanner);
criterion_main!(benches);
