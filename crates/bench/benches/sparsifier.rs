//! Criterion bench for experiment E3 (spectral sparsification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sparsifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_sparsifier");
    group.sample_size(10);
    for n in [24usize, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| bench::e3_sparsifier(&[n], &[1.0], 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparsifier);
criterion_main!(benches);
