//! Criterion micro-benches for the allocation-free kernel hot paths.
//!
//! Each linear-algebra kernel is measured in both its allocating wrapper
//! form and its `_into`/scratch form on identical inputs, so the per-call
//! allocation overhead is directly visible in the report. The Laplacian
//! solve benchmark contrasts a cold scratch arena (rebuilt per request, as a
//! naive server would) against a warm per-worker arena — the hot loop the
//! serving engines actually run.

use bcc_core::graph::generators;
use bcc_core::laplacian::ScratchArena;
use bcc_core::linalg::{cg, chebyshev, vector, CsrMatrix, SolveScratch};
use bcc_core::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A diagonally dominant SPD matrix in CSR form (Laplacian of a random
/// connected graph plus the identity), with a matching right-hand side.
fn spd_system(n: usize, seed: u64) -> (CsrMatrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generators::random_connected(n, 0.2, 4, &mut rng);
    let mut triplets = bcc_core::graph::laplacian::laplacian_triplets(&g);
    for i in 0..n {
        triplets.push((i, i, 1.0));
    }
    let a = CsrMatrix::from_triplets(n, n, &triplets);
    let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    (a, b)
}

fn bench_matvec(c: &mut Criterion) {
    let (a, x) = spd_system(256, 7);
    let mut group = c.benchmark_group("csr_matvec");
    group.sample_size(50);
    group.bench_function("alloc", |bench| bench.iter(|| a.matvec(black_box(&x))));
    let mut y = vec![0.0; a.rows()];
    group.bench_function("into", |bench| {
        bench.iter(|| a.matvec_into(black_box(&x), &mut y))
    });
    group.finish();
}

fn bench_cg(c: &mut Criterion) {
    let (a, b) = spd_system(128, 11);
    let mut group = c.benchmark_group("cg_solve");
    group.sample_size(20);
    group.bench_function("alloc", |bench| {
        bench.iter(|| cg::conjugate_gradient(|x| a.matvec(x), black_box(&b), None, 1e-10, 400))
    });
    let mut scratch = SolveScratch::with_dimension(b.len());
    group.bench_function("scratch", |bench| {
        bench.iter(|| {
            cg::conjugate_gradient_with(
                |x, out| a.matvec_into(x, out),
                black_box(&b),
                None,
                1e-10,
                400,
                &mut scratch,
            )
        })
    });
    group.finish();
}

fn bench_chebyshev(c: &mut Criterion) {
    // The E5 diagonal test pair: A = diag(uniform in [1, κ]), B = κ·I.
    let n = 256;
    let kappa = 16.0;
    let iterations = 40;
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let diag: Vec<f64> = (0..n)
        .map(|_| 1.0 + (kappa - 1.0) * rng.gen::<f64>())
        .collect();
    let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    let mut group = c.benchmark_group("chebyshev_solve");
    group.sample_size(20);
    group.bench_function("alloc", |bench| {
        bench.iter(|| {
            chebyshev::preconditioned_chebyshev_fixed(
                |x| x.iter().zip(&diag).map(|(v, d)| v * d).collect(),
                |r| r.iter().map(|v| v / kappa).collect(),
                kappa,
                black_box(&b),
                iterations,
            )
        })
    });
    let mut scratch = SolveScratch::with_dimension(n);
    group.bench_function("scratch", |bench| {
        bench.iter(|| {
            chebyshev::preconditioned_chebyshev_fixed_with(
                |x, out| {
                    for ((o, v), d) in out.iter_mut().zip(x).zip(&diag) {
                        *o = v * d;
                    }
                },
                |r, out| {
                    for (o, v) in out.iter_mut().zip(r) {
                        *o = v / kappa;
                    }
                },
                kappa,
                black_box(&b),
                iterations,
                &mut scratch,
            )
        })
    });
    group.finish();
}

fn bench_laplacian_solve(c: &mut Criterion) {
    // The serving hot loop at fixed output: preprocessing runs once, then
    // repeated solves against the prepared solver. `cold_arena` rebuilds the
    // scratch arena per request; `warm_arena` reuses one arena plus one
    // output buffer the way a serving worker does.
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let g = generators::random_connected(40, 0.3, 8, &mut rng);
    let cfg = SparsifierConfig::laboratory(g.n(), g.m(), 0.5, 17)
        .with_t(6)
        .with_k(2);
    let mut net = Network::clique(ModelConfig::bcc(), g.n());
    let solver = LaplacianSolver::preprocess(&mut net, &g, &cfg);
    let raw: Vec<f64> = (0..g.n()).map(|_| rng.gen::<f64>() - 0.5).collect();
    let b = vector::remove_mean(&raw);
    let mut group = c.benchmark_group("laplacian_solve");
    group.sample_size(20);
    group.bench_function("cold_arena", |bench| {
        bench.iter(|| {
            solver
                .try_solve(&mut net, black_box(&b), 1e-8)
                .expect("well-formed solve")
        })
    });
    let mut arena = ScratchArena::with_dimension(g.n());
    let mut out = vec![0.0; g.n()];
    group.bench_function("warm_arena", |bench| {
        bench.iter(|| {
            let mut buffer = std::mem::take(&mut out);
            let stats = solver
                .try_solve_into(&mut net, black_box(&b), 1e-8, &mut arena, &mut buffer)
                .expect("well-formed solve");
            out = buffer;
            stats
        })
    });
    group.finish();
}

fn bench_spanner(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(19);
    let g = generators::random_connected(64, 0.4, 8, &mut rng);
    let mut group = c.benchmark_group("spanner_construction");
    group.sample_size(10);
    group.bench_function("baswana_sen_k3", |bench| {
        bench.iter(|| {
            let mut net =
                Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap();
            baswana_sen_spanner(&mut net, black_box(&g), SpannerParams { k: 3, seed: 19 })
        })
    });
    group.finish();
}

fn bench_leverage(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let m = 48;
    let n = 8;
    let mut triplets = Vec::new();
    for r in 0..m {
        for col in 0..n {
            if rng.gen::<f64>() < 0.5 {
                triplets.push((r, col, rng.gen::<f64>() * 2.0 - 1.0));
            }
        }
        triplets.push((r, r % n, 1.0 + rng.gen::<f64>()));
    }
    let a = CsrMatrix::from_triplets(m, n, &triplets);
    let scaled = bcc_core::lp::ScaledMatrix::new(&a, vec![1.0; m]);
    let options = bcc_core::lp::leverage::LeverageOptions::new(0.5, 23);
    let mut group = c.benchmark_group("leverage_scores");
    group.sample_size(10);
    group.bench_function("jl_sketched", |bench| {
        bench.iter(|| {
            let mut net = Network::clique(ModelConfig::bcc(), n);
            bcc_core::lp::leverage::compute_leverage_scores(
                &mut net,
                black_box(&scaled),
                &options,
                &bcc_core::lp::DenseGramSolver::new(),
            )
            .expect("full-rank sketch")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matvec,
    bench_cg,
    bench_chebyshev,
    bench_laplacian_solve,
    bench_spanner,
    bench_leverage
);
criterion_main!(benches);
