//! Criterion bench for experiments E6/E7/E8 (LP solver building blocks).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_e7_e8_lp");
    group.sample_size(10);
    group.bench_function("e6_leverage_scores", |b| b.iter(|| bench::e6_leverage(1)));
    group.bench_function("e7_mixed_ball", |b| b.iter(|| bench::e7_mixed_ball(1)));
    group.bench_function("e8_lp_iterations_n5", |b| {
        b.iter(|| bench::e8_lp_iterations(&[5], 1))
    });
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
