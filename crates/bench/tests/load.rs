//! Integration tests of the declarative load harness: committed scenarios
//! replay bit-identically regardless of profiling parallelism, lifecycle
//! traces export byte-identical timelines and reconcile exactly with the
//! scheduler's counters, the committed `BENCH_load.json` golden stays fresh,
//! Poisson arrival streams converge to their nominal rate, and the smoke
//! scenario's ramp search brackets a sustainable rate inside its configured
//! window.

use bcc_core::telemetry::{chrome_trace_json, TraceEvent};
use bench::load::{
    class_arrivals, read_scenario, run_scenario, run_scenario_traced, Arrival, LoadBench,
};
use bench::trajectory::repo_root;
use proptest::prelude::*;

fn smoke_path() -> std::path::PathBuf {
    repo_root().join("scenarios").join("smoke.json")
}

#[test]
fn scenario_replays_identically_across_profile_worker_counts() {
    let scenario = read_scenario(&smoke_path()).unwrap();
    let serial = run_scenario(&scenario, 1).unwrap();
    let parallel = run_scenario(&scenario, 4).unwrap();
    let again = run_scenario(&scenario, 4).unwrap();
    // Structural equality and byte equality of the serialized artifact: the
    // profiling thread count may only change wall-clock time, never results.
    assert_eq!(serial, parallel);
    assert_eq!(parallel, again);
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap()
    );
}

#[test]
fn traced_runs_export_byte_identical_timelines() {
    // Satellite of the telemetry layer: the lifecycle trace is timestamped
    // against the harness's virtual clock, so two runs of the same scenario
    // — at any profiling worker count — must export byte-identical Chrome
    // timelines, and tracing must never perturb the trajectory itself.
    let scenario = read_scenario(&smoke_path()).unwrap();
    let (t1, r1, _) = run_scenario_traced(&scenario, 1).unwrap();
    let (t4, r4, _) = run_scenario_traced(&scenario, 4).unwrap();
    let (t4b, r4b, _) = run_scenario_traced(&scenario, 4).unwrap();
    assert_eq!(t1, t4);
    assert_eq!(t4, t4b);
    assert_eq!(t1, run_scenario(&scenario, 2).unwrap());
    let export = |records: Vec<bcc_core::TraceRecord>| {
        chrome_trace_json(&[(scenario.name.clone(), records)])
    };
    let (j1, j4, j4b) = (export(r1), export(r4), export(r4b));
    assert_eq!(j1, j4);
    assert_eq!(j4, j4b);
    assert!(!j1.is_empty());
}

#[test]
fn traced_dispatches_reconcile_with_scheduler_counters() {
    // The trace must agree exactly with the scheduler's own accounting: one
    // `dispatched` event per WFQ dispatch, one `solve-end` per completion.
    let scenario = read_scenario(&smoke_path()).unwrap();
    let (trajectory, records, stats) = run_scenario_traced(&scenario, 2).unwrap();
    let count = |event: TraceEvent| records.iter().filter(|r| r.event == event).count() as u64;
    let dispatched: u64 = stats.classes.iter().map(|c| c.dispatched).sum();
    assert_eq!(count(TraceEvent::Dispatched), dispatched);
    assert_eq!(count(TraceEvent::SolveEnd), trajectory.completed);
    assert_eq!(count(TraceEvent::Submitted), count(TraceEvent::Queued));
    assert_eq!(count(TraceEvent::SolveBegin), dispatched);
    // Cache probes only happen for fingerprinted (preprocessed) requests,
    // and the trace must agree with the trajectory's cache counters.
    assert_eq!(count(TraceEvent::CacheHit), trajectory.cache_hits);
    assert_eq!(count(TraceEvent::CacheMiss), trajectory.cache_misses);
}

#[test]
fn tenant_flood_keeps_the_victim_inside_its_bounds() {
    // The serving-layer isolation contract behind `bcc-served`: a
    // rate-limited flooder tenant (custom-1) offering ~10x the victim's
    // load must not push the deadline-carrying victim tenant (custom-0)
    // past its latency bounds. The simulation is deterministic, so these
    // bounds are exact gates, not flaky thresholds.
    let path = repo_root().join("scenarios").join("tenant_flood.json");
    let result = run_scenario(&read_scenario(&path).unwrap(), 2).unwrap();
    let class = |name: &str| {
        result
            .classes
            .iter()
            .find(|c| c.class == name)
            .expect("scenario class present")
    };
    let victim = class("custom-0");
    let flooder = class("custom-1");

    // It is a flood: the flooder offers an order of magnitude more work.
    assert!(flooder.offered >= 10 * victim.offered);

    // The victim's contract: everything completes, nothing expires, and
    // end-to-end p99 stays well inside its 20 ms deadline.
    assert_eq!(victim.completed, victim.offered);
    assert_eq!(victim.expired, 0);
    assert_eq!(victim.rejected + victim.infeasible, 0);
    assert!(
        victim.end_to_end.p99_ns <= 15_000_000,
        "victim e2e p99 {} ns exceeds the 15 ms bound",
        victim.end_to_end.p99_ns
    );

    // The flooder pays for the pressure it creates: its dispatch is
    // throttled by the token bucket and its latency is an order of
    // magnitude worse than the victim's.
    assert!(flooder.queue_wait.p99_ns > 5 * victim.queue_wait.p99_ns);
    assert!(flooder.end_to_end.p99_ns > 3 * victim.end_to_end.p99_ns);
}

#[test]
fn committed_load_golden_matches_a_fresh_smoke_run() {
    let committed = std::fs::read_to_string(repo_root().join("BENCH_load.json")).unwrap();
    let committed: LoadBench = serde_json::from_str(&committed).unwrap();
    let golden = committed
        .scenarios
        .iter()
        .find(|t| t.scenario == "smoke")
        .expect("committed BENCH_load.json covers the smoke scenario");
    let fresh = run_scenario(&read_scenario(&smoke_path()).unwrap(), 2).unwrap();
    assert_eq!(
        golden, &fresh,
        "committed BENCH_load.json is stale for the smoke scenario; \
         run scripts/regen-goldens.sh"
    );
}

#[test]
fn smoke_ramp_converges_inside_its_window() {
    let scenario = read_scenario(&smoke_path()).unwrap();
    let spec = scenario
        .ramp
        .clone()
        .expect("smoke scenario carries a ramp");
    let result = run_scenario(&scenario, 2).unwrap();
    let ramp = result.ramp.expect("ramp search ran");
    assert_eq!(ramp.probes.len(), spec.iterations as usize);
    assert!(ramp.max_sustainable_rps >= spec.min_rps);
    assert!(ramp.max_sustainable_rps <= spec.max_rps);
    assert!(ramp.probes.iter().any(|p| p.sustainable));
    // Bisection tightens monotonically: every unsustainable probe sits above
    // the reported maximum sustainable rate.
    for probe in &ramp.probes {
        if !probe.sustainable {
            assert!(probe.rps > ramp.max_sustainable_rps);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Poisson arrival counts concentrate around `rps * duration`: with
    // mean lambda the standard deviation is sqrt(lambda), so a six-sigma
    // band (plus slack for tiny means) never trips on honest streams.
    #[test]
    fn poisson_arrivals_converge_to_the_nominal_rate(
        rps in 5.0f64..50.0,
        seed in any::<u64>(),
        class_idx in 0usize..8,
    ) {
        let duration_ms = 5_000u64;
        let arrival = Arrival::Poisson { rps };
        let arrivals = class_arrivals(seed, class_idx, &arrival, duration_ms);
        let expected = rps * duration_ms as f64 / 1_000.0;
        let tolerance = 6.0 * expected.sqrt() + 10.0;
        let count = arrivals.len() as f64;
        prop_assert!(
            (count - expected).abs() <= tolerance,
            "count {} vs expected {} (tolerance {})",
            count,
            expected,
            tolerance
        );
        // Streams are sorted and confined to the scenario horizon.
        prop_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(arrivals
            .iter()
            .all(|&t| t < duration_ms * 1_000_000));
    }
}
