//! Client library for the `bcc-served` daemon: the `bcc-wire/v1`
//! protocol types and [`ServedClient`], a Unix-socket client whose method
//! surface mirrors the in-process [`bcc_core::stream::StreamClient`].
//!
//! # Quick start
//!
//! ```no_run
//! use bcc_client::{ServedClient, WireRequest, WireGraph};
//!
//! let mut client = ServedClient::connect("/tmp/bcc.sock", "acme")?;
//! let graph = WireGraph { n: 3, edges: vec![(0, 1, 1.0), (1, 2, 1.0)] };
//! let b = vec![1.0, 0.0, -1.0];
//! let ticket = client.submit(WireRequest::Laplacian { graph, b, epsilon: None })?;
//! let outcome = client.wait(ticket)?;
//! println!("solved in {} rounds", outcome.report.total_rounds);
//! let report = client.shutdown()?;
//! println!("daemon served {} submissions", report.requests);
//! # Ok::<(), bcc_client::WireError>(())
//! ```
//!
//! # Design
//!
//! * **Same numbers as in-process.** The daemon is a thin shell over
//!   [`bcc_core::stream::StreamEngine`]; a sequence of submissions made
//!   through one connection produces a final [`bcc_core::stream::StreamReport`]
//!   bit-identical to driving the engine in-process with the same
//!   [`EngineConfig`] — determinism survives the IPC boundary.
//! * **One config schema, three consumers.** The handshake returns the
//!   engine's effective [`EngineConfig`] (`bcc-engine-config/v1`), the
//!   exact document `StreamEngineBuilder::from_config` /
//!   `BatchEngineBuilder::from_config` consume and `bcc-served --config`
//!   loads.
//! * **Typed failure, never panic.** Malformed frames, oversized length
//!   prefixes, unknown tags and invalid payloads all surface as
//!   [`WireError`] variants; engine faults cross the wire as
//!   [`WireFault`] with stable machine-readable codes.
//!
//! The normative protocol specification lives in `docs/PROTOCOL.md`.

pub mod client;
pub mod wire;

pub use client::ServedClient;
pub use wire::{
    ClientMsg, ServerMsg, WireArc, WireError, WireFault, WireFlowInstance, WireGraph,
    WireMcmfOptions, WireOutcome, WireRequest, WireResponse, MAX_FRAME_LEN, WIRE_SCHEMA,
};

// Re-exported so daemon and tests can spell the shared config vocabulary
// through one crate.
pub use bcc_core::config::{EngineConfig, Priority};
