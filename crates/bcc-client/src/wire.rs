//! The `bcc-wire/v1` protocol: length-prefixed JSON frames over a byte
//! stream, and the message vocabulary both ends speak.
//!
//! See `docs/PROTOCOL.md` for the normative specification. In short:
//!
//! * **Framing.** Every message is one frame: a 4-byte big-endian length
//!   `L ≤` [`MAX_FRAME_LEN`], then exactly `L` bytes of UTF-8 JSON. A
//!   reader that sees an oversized length, a truncated prefix or a
//!   truncated body reports a typed [`WireError`] and must drop the
//!   connection — framing errors are not recoverable mid-stream.
//! * **Handshake.** The client's first frame is [`ClientMsg::Hello`]
//!   carrying the protocol schema tag ([`WIRE_SCHEMA`]) and the tenant
//!   name; the server answers [`ServerMsg::Hello`] (echoing the engine's
//!   effective [`EngineConfig`] — one config schema, shared verbatim with
//!   the in-process builders) or [`ServerMsg::Fault`] and closes.
//! * **Payloads.** Requests and responses cross the wire as explicit
//!   mirror types ([`WireRequest`], [`WireResponse`]) that carry raw edge
//!   and arc lists, never trusted adjacency structure: the receiving side
//!   revalidates every graph with [`WireGraph::to_graph`] /
//!   [`WireFlowInstance::to_instance`], so a malformed payload is a typed
//!   fault, not a panic inside a worker.
//!
//! LP requests are **not** expressible in `bcc-wire/v1`: their instances
//! carry `±∞` bounds, which JSON cannot represent (the in-tree serde shim
//! rejects non-finite floats by design). A future `bcc-wire/v2` can add an
//! `Lp` tag with an explicit infinity encoding; per the compatibility
//! rules, adding a message or request tag is exactly what a version bump
//! is for.

use std::io::{Read, Write};

use bcc_core::config::{EngineConfig, Priority};
use bcc_core::stream::StreamReport;
use bcc_core::telemetry::MetricsSnapshot;
use bcc_core::{Error, Request, Response, RoundReport};
use bcc_flow::{McmfOptions, WeightStrategyChoice};
use bcc_graph::{DiGraph, FlowInstance, Graph};
use serde::{Deserialize, Serialize};

/// The protocol version tag exchanged in the handshake.
pub const WIRE_SCHEMA: &str = "bcc-wire/v1";

/// Hard bound on one frame's payload length. Large enough for any
/// laboratory graph; small enough that a corrupt length prefix cannot make
/// a reader attempt a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// Everything that can go wrong on the wire, typed. Framing and decoding
/// problems never panic and never hang: they surface here, and the
/// connection is dropped.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// An OS-level I/O failure (broken pipe, refused connection, ...).
    Io {
        /// Display form of the underlying `std::io::Error`.
        detail: String,
    },
    /// The peer closed the connection where a frame was required.
    Closed,
    /// A read timeout elapsed at a frame boundary (no bytes of the next
    /// frame had arrived). Only surfaces on sockets with a read timeout
    /// configured — the daemon uses it to poll its shutdown flag between
    /// frames. A timeout *inside* a frame keeps blocking instead: the
    /// prefix promised more bytes, and abandoning them would desync the
    /// stream.
    TimedOut,
    /// A frame announced a length beyond [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The announced length.
        len: u64,
    },
    /// The stream ended inside a length prefix or frame body.
    Truncated {
        /// Bytes the frame (or prefix) still owed.
        missing: usize,
    },
    /// The frame body was not valid UTF-8 JSON for the expected message
    /// type (including unknown message tags).
    Malformed {
        /// What the decoder rejected.
        detail: String,
    },
    /// A structurally valid message carried an invalid payload (edge out
    /// of range, self-loop, non-positive weight or capacity, ...).
    InvalidPayload {
        /// Which invariant the payload violated.
        detail: String,
    },
    /// The peer speaks a different protocol version.
    UnsupportedSchema {
        /// The schema tag the peer presented.
        found: String,
    },
    /// The peer sent a message that is valid on its own but wrong for the
    /// protocol state (e.g. a response type the request cannot produce).
    Protocol {
        /// What was expected and what arrived.
        detail: String,
    },
    /// The daemon reported a fault — an engine error (typed by
    /// [`WireFault::code`]) or a protocol-level rejection.
    Remote(WireFault),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io { detail } => write!(f, "i/o: {detail}"),
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::TimedOut => write!(f, "read timed out at a frame boundary"),
            WireError::FrameTooLarge { len } => write!(
                f,
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"
            ),
            WireError::Truncated { missing } => {
                write!(f, "truncated frame: {missing} bytes missing")
            }
            WireError::Malformed { detail } => write!(f, "malformed message: {detail}"),
            WireError::InvalidPayload { detail } => write!(f, "invalid payload: {detail}"),
            WireError::UnsupportedSchema { found } => write!(
                f,
                "unsupported wire schema `{found}` (this end speaks `{WIRE_SCHEMA}`)"
            ),
            WireError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            WireError::Remote(fault) => {
                write!(f, "remote fault [{}]: {}", fault.code, fault.message)
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io {
            detail: e.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when the payload exceeds
/// [`MAX_FRAME_LEN`]; [`WireError::Io`] on write failure.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
        });
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame, returning `Ok(None)` on a clean end-of-stream at a
/// frame boundary (the peer hung up between messages).
///
/// # Errors
///
/// [`WireError::Truncated`] when the stream ends inside the prefix or the
/// body, [`WireError::FrameTooLarge`] on an oversized announced length
/// (the reader must drop the connection — it cannot resync),
/// [`WireError::Io`] on any other read failure.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    missing: prefix.len() - filled,
                })
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(WireError::TimedOut)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len: len as u64 });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match reader.read(&mut payload[got..]) {
            Ok(0) => return Err(WireError::Truncated { missing: len - got }),
            Ok(k) => got += k,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted
                        | std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(payload))
}

/// Serializes a message into one frame payload (UTF-8 JSON).
///
/// # Errors
///
/// [`WireError::Malformed`] when the value cannot be represented in JSON
/// (e.g. a non-finite float).
pub fn encode_msg<T: Serialize>(msg: &T) -> Result<Vec<u8>, WireError> {
    serde_json::to_string(msg)
        .map(String::into_bytes)
        .map_err(|e| WireError::Malformed {
            detail: e.to_string(),
        })
}

/// Deserializes one frame payload into a message.
///
/// # Errors
///
/// [`WireError::Malformed`] on non-UTF-8 bytes, invalid JSON, or a JSON
/// shape that does not decode as `T` (including unknown message tags).
pub fn decode_msg<T: Deserialize>(payload: &[u8]) -> Result<T, WireError> {
    let text = std::str::from_utf8(payload).map_err(|e| WireError::Malformed {
        detail: format!("frame is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed {
        detail: e.to_string(),
    })
}

/// Writes one message as one frame.
///
/// # Errors
///
/// The union of [`encode_msg`] and [`write_frame`] errors.
pub fn send_msg<T: Serialize>(writer: &mut impl Write, msg: &T) -> Result<(), WireError> {
    write_frame(writer, &encode_msg(msg)?)
}

/// Reads one frame and decodes it, treating end-of-stream as
/// [`WireError::Closed`] (use [`read_frame`] directly where a clean
/// hang-up is an expected outcome).
///
/// # Errors
///
/// The union of [`read_frame`] and [`decode_msg`] errors, plus
/// [`WireError::Closed`].
pub fn recv_msg<T: Deserialize>(reader: &mut impl Read) -> Result<T, WireError> {
    match read_frame(reader)? {
        Some(payload) => decode_msg(&payload),
        None => Err(WireError::Closed),
    }
}

// ---------------------------------------------------------------------------
// Payload mirrors
// ---------------------------------------------------------------------------

/// An undirected graph on the wire: vertex count plus raw `(u, v, weight)`
/// edges. Adjacency is rebuilt — and every edge revalidated — on receipt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireGraph {
    /// Number of vertices.
    pub n: usize,
    /// The edges as `(u, v, weight)` triples.
    pub edges: Vec<(usize, usize, f64)>,
}

impl WireGraph {
    /// Mirrors an in-process graph.
    pub fn from_graph(graph: &Graph) -> Self {
        WireGraph {
            n: graph.n(),
            edges: graph.edges().iter().map(|e| (e.u, e.v, e.weight)).collect(),
        }
    }

    /// Revalidates and rebuilds the in-process graph.
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidPayload`] on an out-of-range endpoint, a
    /// self-loop, or a non-finite / non-positive weight — the same
    /// invariants [`Graph::add_edge`] would otherwise enforce by panicking.
    pub fn to_graph(&self) -> Result<Graph, WireError> {
        for &(u, v, weight) in &self.edges {
            if u >= self.n || v >= self.n {
                return Err(WireError::InvalidPayload {
                    detail: format!("edge ({u}, {v}) out of range for n = {}", self.n),
                });
            }
            if u == v {
                return Err(WireError::InvalidPayload {
                    detail: format!("self-loop at vertex {u}"),
                });
            }
            if !(weight.is_finite() && weight > 0.0) {
                return Err(WireError::InvalidPayload {
                    detail: format!("edge ({u}, {v}) has invalid weight {weight}"),
                });
            }
        }
        Ok(Graph::from_edges(self.n, self.edges.iter().copied()))
    }
}

/// One directed arc on the wire (4 fields; the shim's tuple support stops
/// at triples, and named fields read better in traces anyway).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireArc {
    /// Tail vertex.
    pub from: usize,
    /// Head vertex.
    pub to: usize,
    /// Capacity (must be positive).
    pub capacity: i64,
    /// Cost (may be negative).
    pub cost: i64,
}

/// A min-cost max-flow instance on the wire: raw arcs plus terminals,
/// revalidated on receipt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireFlowInstance {
    /// Number of vertices.
    pub n: usize,
    /// The arcs.
    pub arcs: Vec<WireArc>,
    /// Source vertex.
    pub source: usize,
    /// Sink vertex.
    pub sink: usize,
}

impl WireFlowInstance {
    /// Mirrors an in-process instance.
    pub fn from_instance(instance: &FlowInstance) -> Self {
        WireFlowInstance {
            n: instance.graph.n(),
            arcs: instance
                .graph
                .arcs()
                .iter()
                .map(|a| WireArc {
                    from: a.from,
                    to: a.to,
                    capacity: a.capacity,
                    cost: a.cost,
                })
                .collect(),
            source: instance.source,
            sink: instance.sink,
        }
    }

    /// Revalidates and rebuilds the in-process instance.
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidPayload`] on out-of-range endpoints or
    /// terminals, self-loops, non-positive capacities, or equal terminals.
    pub fn to_instance(&self) -> Result<FlowInstance, WireError> {
        for arc in &self.arcs {
            if arc.from >= self.n || arc.to >= self.n {
                return Err(WireError::InvalidPayload {
                    detail: format!(
                        "arc ({}, {}) out of range for n = {}",
                        arc.from, arc.to, self.n
                    ),
                });
            }
            if arc.from == arc.to {
                return Err(WireError::InvalidPayload {
                    detail: format!("self-loop arc at vertex {}", arc.from),
                });
            }
            if arc.capacity <= 0 {
                return Err(WireError::InvalidPayload {
                    detail: format!(
                        "arc ({}, {}) has non-positive capacity {}",
                        arc.from, arc.to, arc.capacity
                    ),
                });
            }
        }
        if self.source >= self.n || self.sink >= self.n || self.source == self.sink {
            return Err(WireError::InvalidPayload {
                detail: format!(
                    "invalid terminals source {} / sink {} for n = {}",
                    self.source, self.sink, self.n
                ),
            });
        }
        let graph = DiGraph::from_arcs(
            self.n,
            self.arcs.iter().map(|a| (a.from, a.to, a.capacity, a.cost)),
        );
        Ok(FlowInstance::new(graph, self.source, self.sink))
    }
}

/// [`McmfOptions`] on the wire, with the strategy spelled as a string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireMcmfOptions {
    /// Seed for the cost perturbation and solver randomness.
    pub seed: u64,
    /// Additive accuracy the LP is solved to before rounding.
    pub lp_epsilon: f64,
    /// Weight strategy: `"lewis"` or `"uniform"`.
    pub strategy: String,
    /// Solve SDD systems through the full sparsifier pipeline.
    pub full_laplacian_pipeline: bool,
    /// Use the paper's worst-case penalty constants.
    pub paper_constants: bool,
    /// Hard cap on Newton steps.
    pub max_newton_steps: usize,
}

impl WireMcmfOptions {
    /// Mirrors in-process options.
    pub fn from_options(options: &McmfOptions) -> Self {
        WireMcmfOptions {
            seed: options.seed,
            lp_epsilon: options.lp_epsilon,
            strategy: match options.strategy {
                WeightStrategyChoice::Lewis => "lewis".to_string(),
                WeightStrategyChoice::Uniform => "uniform".to_string(),
            },
            full_laplacian_pipeline: options.full_laplacian_pipeline,
            paper_constants: options.paper_constants,
            max_newton_steps: options.max_newton_steps,
        }
    }

    /// Rebuilds the in-process options.
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidPayload`] on an unknown strategy name.
    pub fn to_options(&self) -> Result<McmfOptions, WireError> {
        let strategy = match self.strategy.as_str() {
            "lewis" => WeightStrategyChoice::Lewis,
            "uniform" => WeightStrategyChoice::Uniform,
            other => {
                return Err(WireError::InvalidPayload {
                    detail: format!("unknown weight strategy `{other}`"),
                })
            }
        };
        Ok(McmfOptions {
            seed: self.seed,
            lp_epsilon: self.lp_epsilon,
            strategy,
            full_laplacian_pipeline: self.full_laplacian_pipeline,
            paper_constants: self.paper_constants,
            max_newton_steps: self.max_newton_steps,
        })
    }
}

/// A pipeline request on the wire. LP requests are not expressible in v1
/// (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireRequest {
    /// Theorem 1.2: spectral sparsification.
    Sparsify {
        /// The input graph.
        graph: WireGraph,
        /// Target accuracy.
        epsilon: f64,
    },
    /// Theorem 1.3: Laplacian solve.
    Laplacian {
        /// The input graph.
        graph: WireGraph,
        /// Right-hand side.
        b: Vec<f64>,
        /// Solve accuracy; `None` = the engine's default.
        epsilon: Option<f64>,
    },
    /// Theorem 1.1: min-cost max-flow.
    MinCostMaxFlow {
        /// The flow instance.
        instance: WireFlowInstance,
        /// Solver options; `None` = laboratory defaults.
        options: Option<WireMcmfOptions>,
    },
}

impl WireRequest {
    /// Mirrors an in-process request; `None` for LP requests, which
    /// `bcc-wire/v1` cannot express.
    pub fn from_request(request: &Request) -> Option<Self> {
        match request {
            Request::Sparsify { graph, epsilon } => Some(WireRequest::Sparsify {
                graph: WireGraph::from_graph(graph),
                epsilon: *epsilon,
            }),
            Request::Laplacian { graph, b, epsilon } => Some(WireRequest::Laplacian {
                graph: WireGraph::from_graph(graph),
                b: b.clone(),
                epsilon: *epsilon,
            }),
            Request::MinCostMaxFlow { instance, options } => Some(WireRequest::MinCostMaxFlow {
                instance: WireFlowInstance::from_instance(instance),
                options: options.as_ref().map(WireMcmfOptions::from_options),
            }),
            Request::Lp { .. } => None,
        }
    }

    /// Revalidates and rebuilds the in-process request.
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidPayload`] when any carried graph, instance or
    /// option fails validation.
    pub fn into_request(self) -> Result<Request, WireError> {
        Ok(match self {
            WireRequest::Sparsify { graph, epsilon } => Request::Sparsify {
                graph: graph.to_graph()?,
                epsilon,
            },
            WireRequest::Laplacian { graph, b, epsilon } => Request::Laplacian {
                graph: graph.to_graph()?,
                b,
                epsilon,
            },
            WireRequest::MinCostMaxFlow { instance, options } => Request::MinCostMaxFlow {
                instance: instance.to_instance()?,
                options: options.map(|o| o.to_options()).transpose()?,
            },
        })
    }
}

/// A pipeline response on the wire — the full result values, so a remote
/// client sees bit-identical numbers to an in-process caller (JSON floats
/// round-trip exactly under the shim's shortest-representation printer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireResponse {
    /// Result of a sparsify request.
    Sparsify {
        /// The sparsifier.
        sparsifier: WireGraph,
        /// Originating input-edge index of each sparsifier edge.
        edge_origin: Vec<usize>,
        /// Announcing vertex of each sparsifier edge.
        added_by: Vec<usize>,
    },
    /// Result of a Laplacian request.
    Laplacian {
        /// The approximate solution.
        solution: Vec<f64>,
        /// Chebyshev iterations performed.
        iterations: usize,
        /// Rounds charged (excluding preprocessing).
        rounds: u64,
    },
    /// Result of a min-cost max-flow request.
    MinCostMaxFlow {
        /// Integral flow on every arc.
        flow: Vec<i64>,
        /// Flow value.
        value: i64,
        /// Total cost.
        cost: i64,
        /// Fractional edge flows before rounding.
        fractional: Vec<f64>,
        /// Whether the rounded flow passed the feasibility check.
        rounded_feasible: bool,
        /// Path-following iterations of the LP solver.
        path_iterations: usize,
        /// Gram (Laplacian) solves performed.
        gram_solves: usize,
        /// Total rounds charged.
        rounds: u64,
    },
}

impl WireResponse {
    /// Mirrors an in-process response; `None` for LP responses (no LP
    /// request can arrive over v1).
    pub fn from_response(response: &Response) -> Option<Self> {
        match response {
            Response::Sparsify(out) => Some(WireResponse::Sparsify {
                sparsifier: WireGraph::from_graph(&out.sparsifier),
                edge_origin: out.edge_origin.clone(),
                added_by: out.added_by.clone(),
            }),
            Response::Laplacian(solve) => Some(WireResponse::Laplacian {
                solution: solve.solution.clone(),
                iterations: solve.iterations,
                rounds: solve.rounds,
            }),
            Response::MinCostMaxFlow(result) => Some(WireResponse::MinCostMaxFlow {
                flow: result.flow.flow.clone(),
                value: result.flow.value,
                cost: result.flow.cost,
                fractional: result.fractional.clone(),
                rounded_feasible: result.rounded_feasible,
                path_iterations: result.path_iterations,
                gram_solves: result.gram_solves,
                rounds: result.rounds,
            }),
            Response::Lp(_) => None,
        }
    }
}

/// A completed submission on the wire: the response value plus the
/// structured per-phase round accounting, mirroring
/// [`bcc_core::Outcome`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireOutcome {
    /// The computed result.
    pub value: WireResponse,
    /// Per-phase round accounting of the run.
    pub report: RoundReport,
}

/// A typed fault on the wire: a stable machine-readable `code` plus the
/// human-readable display form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireFault {
    /// Stable fault code (see [`WireFault::from_engine_error`] and the
    /// protocol-level codes in `docs/PROTOCOL.md`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

impl WireFault {
    /// A fault with the given code and message.
    pub fn new(code: impl Into<String>, message: impl Into<String>) -> Self {
        WireFault {
            code: code.into(),
            message: message.into(),
        }
    }

    /// Maps an engine [`Error`] to its stable wire code, preserving the
    /// display form as the message.
    pub fn from_engine_error(error: &Error) -> Self {
        let code = match error {
            Error::Runtime(_) => "runtime",
            Error::Sparsifier(_) => "sparsifier",
            Error::Laplacian(_) => "laplacian",
            Error::Lp(_) => "lp",
            Error::Flow(_) => "flow",
            Error::InvalidEpsilon { .. } => "invalid-epsilon",
            Error::Overloaded { .. } => "overloaded",
            Error::DeadlineExceeded { .. } => "deadline-exceeded",
            Error::DeadlineInfeasible { .. } => "deadline-infeasible",
            Error::WaitTimeout { .. } => "wait-timeout",
            Error::QuotaExceeded { .. } => "quota-exceeded",
        };
        WireFault::new(code, error.to_string())
    }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Client → server messages. The first message on a connection must be
/// [`ClientMsg::Hello`]; everything else requires an authenticated tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Handshake: the protocol version and the tenant name.
    Hello {
        /// Must equal [`WIRE_SCHEMA`].
        schema: String,
        /// The tenant this connection authenticates as.
        tenant: String,
    },
    /// Submit a request, optionally with a relative deadline.
    Submit {
        /// The request payload.
        request: WireRequest,
        /// Relative deadline in milliseconds; `None` = no deadline.
        deadline_ms: Option<u64>,
    },
    /// Non-blocking completion check of one ticket.
    Poll {
        /// The ticket index returned by [`ServerMsg::Submitted`].
        ticket: u64,
    },
    /// Blocking wait for one ticket, optionally bounded.
    Wait {
        /// The ticket index returned by [`ServerMsg::Submitted`].
        ticket: u64,
        /// Wait bound in milliseconds; `None` = wait indefinitely.
        timeout_ms: Option<u64>,
    },
    /// Fetch a live metrics snapshot (`bcc-metrics/v1`).
    TelemetrySnapshot,
    /// Fetch the Chrome trace-event timeline accumulated so far.
    ChromeTrace,
    /// Stop accepting new work, drain everything in flight, then answer
    /// with the final [`ServerMsg::Report`] and exit.
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Handshake answer: the tenant's scheduling class and the engine's
    /// effective config — the same `bcc-engine-config/v1` schema the
    /// in-process builders consume.
    Hello {
        /// Echoes [`WIRE_SCHEMA`].
        schema: String,
        /// The authenticated tenant.
        tenant: String,
        /// The tenant's WFQ class.
        class: Priority,
        /// The serving engine's effective configuration.
        config: EngineConfig,
    },
    /// A submission was admitted under this ticket index.
    Submitted {
        /// Per-scope submission index; redeem with poll/wait.
        ticket: u64,
    },
    /// The ticket is still queued or executing (poll only).
    Pending {
        /// The polled ticket.
        ticket: u64,
    },
    /// The ticket completed successfully.
    Done {
        /// The completed ticket.
        ticket: u64,
        /// Result value plus round accounting.
        outcome: WireOutcome,
    },
    /// The ticket failed, or the request was refused before admission.
    Failed {
        /// The ticket, when one was assigned.
        ticket: Option<u64>,
        /// The typed fault.
        fault: WireFault,
    },
    /// Answer to [`ClientMsg::TelemetrySnapshot`].
    Telemetry {
        /// The live metrics snapshot.
        snapshot: MetricsSnapshot,
    },
    /// Answer to [`ClientMsg::ChromeTrace`].
    Trace {
        /// The trace-event JSON document.
        json: String,
    },
    /// Final answer to [`ClientMsg::Shutdown`], sent after the drain: the
    /// deterministic report of everything the engine served.
    Report {
        /// The engine's final stream report.
        report: StreamReport,
    },
    /// A connection-level fault (handshake rejection, malformed frame,
    /// unknown tenant, ...). The server drops the connection after.
    Fault {
        /// The typed fault.
        fault: WireFault,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::generators;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut reader = &buf[..];
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn wire_graph_round_trips_and_revalidates() {
        let graph = generators::grid(3, 4);
        let wire = WireGraph::from_graph(&graph);
        let back = wire.to_graph().unwrap();
        assert_eq!(back, graph);

        let bad = WireGraph {
            n: 2,
            edges: vec![(0, 2, 1.0)],
        };
        assert!(matches!(
            bad.to_graph(),
            Err(WireError::InvalidPayload { .. })
        ));
        let loopy = WireGraph {
            n: 2,
            edges: vec![(1, 1, 1.0)],
        };
        assert!(loopy.to_graph().is_err());
        let negative = WireGraph {
            n: 2,
            edges: vec![(0, 1, -1.0)],
        };
        assert!(negative.to_graph().is_err());
    }

    #[test]
    fn requests_mirror_in_process_requests() {
        let graph = generators::grid(3, 3);
        let mut b = vec![0.0; 9];
        b[0] = 1.0;
        b[8] = -1.0;
        let request = Request::laplacian(graph, b);
        let wire = WireRequest::from_request(&request).unwrap();
        let json = serde_json::to_string(&wire).unwrap();
        let decoded: WireRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(decoded, wire);
        // `Request` has no `PartialEq`; mirroring the revalidated request
        // back onto the wire must reproduce the original message exactly.
        let rebuilt = decoded.into_request().unwrap();
        assert_eq!(WireRequest::from_request(&rebuilt).unwrap(), wire);
    }

    #[test]
    fn client_messages_round_trip_through_json() {
        let msgs = vec![
            ClientMsg::Hello {
                schema: WIRE_SCHEMA.to_string(),
                tenant: "acme".to_string(),
            },
            ClientMsg::Poll { ticket: 3 },
            ClientMsg::Wait {
                ticket: 4,
                timeout_ms: Some(250),
            },
            ClientMsg::TelemetrySnapshot,
            ClientMsg::ChromeTrace,
            ClientMsg::Shutdown,
        ];
        for msg in msgs {
            let bytes = encode_msg(&msg).unwrap();
            let back: ClientMsg = decode_msg(&bytes).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn engine_error_codes_are_stable() {
        let fault = WireFault::from_engine_error(&Error::Overloaded { capacity: 8 });
        assert_eq!(fault.code, "overloaded");
        let fault = WireFault::from_engine_error(&Error::QuotaExceeded {
            tenant: "acme".to_string(),
            quota: 2,
        });
        assert_eq!(fault.code, "quota-exceeded");
        assert!(fault.message.contains("acme"));
    }
}
