//! [`ServedClient`]: the Unix-socket client for a `bcc-served` daemon,
//! mirroring the in-process [`bcc_core::stream::StreamClient`] API.

use std::io::{BufReader, BufWriter};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use bcc_core::config::{EngineConfig, Priority};
use bcc_core::stream::StreamReport;
use bcc_core::telemetry::MetricsSnapshot;

use crate::wire::{
    recv_msg, send_msg, ClientMsg, ServerMsg, WireError, WireOutcome, WireRequest, WIRE_SCHEMA,
};

/// A connected, authenticated session with a `bcc-served` daemon.
///
/// The method surface deliberately mirrors the in-process
/// [`bcc_core::stream::StreamClient`]: [`submit`](ServedClient::submit) /
/// [`submit_with_deadline`](ServedClient::submit_with_deadline) return a
/// ticket, [`poll`](ServedClient::poll) is the non-blocking check,
/// [`wait`](ServedClient::wait) / [`wait_timeout`](ServedClient::wait_timeout)
/// block, and [`shutdown`](ServedClient::shutdown) drains the daemon and
/// returns its final deterministic [`StreamReport`]. Engine faults arrive
/// as [`WireError::Remote`] carrying the same typed codes the in-process
/// [`bcc_core::Error`] spells.
///
/// Each connection speaks one tenant (named at
/// [`connect`](ServedClient::connect)); the daemon schedules the tenant's
/// work under the WFQ class reported by [`class`](ServedClient::class).
/// The protocol itself is one request / one response per frame, so a
/// client is used from one thread; open more connections for parallelism.
#[derive(Debug)]
pub struct ServedClient {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
    tenant: String,
    class: Priority,
    config: EngineConfig,
}

impl ServedClient {
    /// Connects to the daemon's socket and performs the `bcc-wire/v1`
    /// handshake, authenticating as `tenant`.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the socket cannot be reached,
    /// [`WireError::UnsupportedSchema`] on a protocol-version mismatch,
    /// [`WireError::Remote`] when the daemon rejects the tenant, plus the
    /// usual framing errors.
    pub fn connect(path: impl AsRef<Path>, tenant: &str) -> Result<Self, WireError> {
        let stream = UnixStream::connect(path)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = ServedClient {
            reader,
            writer,
            tenant: tenant.to_string(),
            class: Priority::Bulk,
            config: EngineConfig::default(),
        };
        let hello = ClientMsg::Hello {
            schema: WIRE_SCHEMA.to_string(),
            tenant: tenant.to_string(),
        };
        match client.call(&hello)? {
            ServerMsg::Hello {
                schema,
                tenant: granted,
                class,
                config,
            } => {
                if schema != WIRE_SCHEMA {
                    return Err(WireError::UnsupportedSchema { found: schema });
                }
                if granted != tenant {
                    return Err(WireError::Protocol {
                        detail: format!(
                            "handshake granted tenant `{granted}`, asked for `{tenant}`"
                        ),
                    });
                }
                client.class = class;
                client.config = config;
                Ok(client)
            }
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// The tenant this connection authenticated as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The WFQ class the daemon assigned this tenant.
    pub fn class(&self) -> Priority {
        self.class
    }

    /// The serving engine's effective configuration, as reported in the
    /// handshake — the same `bcc-engine-config/v1` document the in-process
    /// builders consume.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Submits a request; returns its ticket.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] when the daemon refuses admission (e.g.
    /// `overloaded`, `quota-exceeded`), or a transport error.
    pub fn submit(&mut self, request: WireRequest) -> Result<u64, WireError> {
        self.submit_inner(request, None)
    }

    /// Submits a request with a relative deadline; returns its ticket.
    ///
    /// # Errors
    ///
    /// As [`submit`](ServedClient::submit), plus `deadline-infeasible`
    /// when the daemon's admission check predicts the deadline cannot be
    /// met.
    pub fn submit_with_deadline(
        &mut self,
        request: WireRequest,
        deadline: Duration,
    ) -> Result<u64, WireError> {
        self.submit_inner(
            request,
            Some(deadline.as_millis().min(u64::MAX as u128) as u64),
        )
    }

    fn submit_inner(
        &mut self,
        request: WireRequest,
        deadline_ms: Option<u64>,
    ) -> Result<u64, WireError> {
        match self.call(&ClientMsg::Submit {
            request,
            deadline_ms,
        })? {
            ServerMsg::Submitted { ticket } => Ok(ticket),
            ServerMsg::Failed { fault, .. } => Err(WireError::Remote(fault)),
            other => Err(unexpected("Submitted", &other)),
        }
    }

    /// Non-blocking completion check: `Ok(Some(outcome))` when the ticket
    /// finished, `Ok(None)` while it is still queued or executing.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] when the submission failed (the typed engine
    /// fault), or a transport error.
    pub fn poll(&mut self, ticket: u64) -> Result<Option<WireOutcome>, WireError> {
        match self.call(&ClientMsg::Poll { ticket })? {
            ServerMsg::Pending { .. } => Ok(None),
            ServerMsg::Done { outcome, .. } => Ok(Some(outcome)),
            ServerMsg::Failed { fault, .. } => Err(WireError::Remote(fault)),
            other => Err(unexpected("Pending/Done/Failed", &other)),
        }
    }

    /// Blocks until the ticket completes.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] when the submission failed, or a transport
    /// error.
    pub fn wait(&mut self, ticket: u64) -> Result<WireOutcome, WireError> {
        self.wait_inner(ticket, None)
    }

    /// Blocks until the ticket completes or `timeout` elapses. On timeout
    /// the error is [`WireError::Remote`] with code `wait-timeout` and the
    /// ticket stays redeemable — the submission keeps running.
    ///
    /// # Errors
    ///
    /// As [`wait`](ServedClient::wait), plus the `wait-timeout` fault.
    pub fn wait_timeout(
        &mut self,
        ticket: u64,
        timeout: Duration,
    ) -> Result<WireOutcome, WireError> {
        self.wait_inner(
            ticket,
            Some(timeout.as_millis().min(u64::MAX as u128) as u64),
        )
    }

    fn wait_inner(
        &mut self,
        ticket: u64,
        timeout_ms: Option<u64>,
    ) -> Result<WireOutcome, WireError> {
        match self.call(&ClientMsg::Wait { ticket, timeout_ms })? {
            ServerMsg::Done { outcome, .. } => Ok(outcome),
            ServerMsg::Failed { fault, .. } => Err(WireError::Remote(fault)),
            other => Err(unexpected("Done/Failed", &other)),
        }
    }

    /// Fetches a live `bcc-metrics/v1` snapshot from the daemon.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Remote`] on a daemon fault.
    pub fn telemetry_snapshot(&mut self) -> Result<MetricsSnapshot, WireError> {
        match self.call(&ClientMsg::TelemetrySnapshot)? {
            ServerMsg::Telemetry { snapshot } => Ok(snapshot),
            other => Err(unexpected("Telemetry", &other)),
        }
    }

    /// Fetches the Chrome trace-event timeline accumulated so far, as a
    /// JSON document loadable in `chrome://tracing` / Perfetto.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Remote`] on a daemon fault.
    pub fn chrome_trace(&mut self) -> Result<String, WireError> {
        match self.call(&ClientMsg::ChromeTrace)? {
            ServerMsg::Trace { json } => Ok(json),
            other => Err(unexpected("Trace", &other)),
        }
    }

    /// Asks the daemon to stop accepting work, drain everything in
    /// flight, and exit; blocks until the drain finishes and returns the
    /// daemon's final deterministic [`StreamReport`].
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Remote`] on a daemon fault.
    pub fn shutdown(mut self) -> Result<StreamReport, WireError> {
        match self.call(&ClientMsg::Shutdown)? {
            ServerMsg::Report { report } => Ok(report),
            other => Err(unexpected("Report", &other)),
        }
    }

    /// One request / one response.
    fn call(&mut self, msg: &ClientMsg) -> Result<ServerMsg, WireError> {
        send_msg(&mut self.writer, msg)?;
        let reply: ServerMsg = recv_msg(&mut self.reader)?;
        if let ServerMsg::Fault { fault } = reply {
            return Err(WireError::Remote(fault));
        }
        Ok(reply)
    }
}

fn unexpected(expected: &str, got: &ServerMsg) -> WireError {
    WireError::Protocol {
        detail: format!("expected {expected}, got {got:?}"),
    }
}
