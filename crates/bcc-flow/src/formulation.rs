//! The linear-program formulation of minimum cost maximum flow (Section 5).
//!
//! Variables are `(x, y, z, F)` where `x ∈ R^{|E|}` is the flow, `y, z ≥ 0`
//! are per-vertex slack variables (for every vertex except the source) and
//! `F` is the flow value. The constraints are
//! `B x + y − z − F·e_t = 0` with `B` the edge–vertex incidence matrix with
//! the source row removed, and box bounds on every variable. The objective
//! `q̃ᵀx + λ(1ᵀy + 1ᵀz) − Λ·F` simultaneously (i) maximizes the flow value
//! (through the large reward `Λ` on `F`), (ii) forces the slacks to zero
//! (through the large penalty `λ`) and (iii) minimizes the perturbed cost
//! `q̃ᵀx`. The perturbation `q̃ = q + (random multiples of 1/(4|E|²M²))`
//! makes the optimal flow unique with probability ≥ 1/2 (Daitch–Spielman),
//! which is what allows rounding the approximate LP solution to the exact
//! integral optimum.
//!
//! ### Constants
//!
//! The paper's penalty constants (`M̃ = 8|E|²M³`, `λ = 440|E|⁴M̃²M³`) are
//! astronomically large — they exist to make the worst-case analysis airtight
//! and immediately exceed `f64` precision on any non-trivial instance. The
//! laboratory constants used here (`Λ = 4n·M̃_lab`, `λ = 4·Λ`,
//! `M̃_lab = 2(|E|M + 1)`) enforce exactly the same structural properties
//! (any unit of `F` is worth more than the most expensive routing of a unit
//! of flow; any unit of slack costs more than it could ever save) and are
//! recorded as a substitution in DESIGN.md. `FlowLpConfig::paper_constants`
//! switches to the original values for small instances.

use bcc_graph::FlowInstance;
use bcc_linalg::CsrMatrix;
use bcc_lp::LpInstance;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of the LP formulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowLpConfig {
    /// Seed of the cost perturbation.
    pub seed: u64,
    /// Use the paper's worst-case penalty constants instead of the laboratory
    /// ones.
    pub paper_constants: bool,
}

impl Default for FlowLpConfig {
    fn default() -> Self {
        FlowLpConfig {
            seed: 0x5EED_F10E,
            paper_constants: false,
        }
    }
}

/// The assembled LP plus the bookkeeping needed to interpret its solution.
#[derive(Debug, Clone)]
pub struct FlowLp {
    /// The LP instance (variables ordered as `x‖y‖z‖F`).
    pub lp: LpInstance,
    /// A strictly interior starting point.
    pub interior_point: Vec<f64>,
    /// Number of edge variables (`|E|`).
    pub edge_count: usize,
    /// Number of constrained vertices (`|V| − 1`, the source is omitted).
    pub vertex_count: usize,
    /// Index of every non-source vertex in the constraint ordering.
    pub vertex_index: Vec<Option<usize>>,
    /// The cost perturbation that was added to `q` (per edge).
    pub perturbation: Vec<f64>,
    /// The slack penalty `λ`.
    pub lambda: f64,
    /// The flow-value reward `Λ`.
    pub flow_reward: f64,
}

impl FlowLp {
    /// The edge-flow part of an LP solution vector.
    pub fn edge_flows<'a>(&self, x: &'a [f64]) -> &'a [f64] {
        &x[..self.edge_count]
    }

    /// The slack part `(y, z)` of an LP solution vector.
    pub fn slacks<'a>(&self, x: &'a [f64]) -> (&'a [f64], &'a [f64]) {
        let start = self.edge_count;
        let v = self.vertex_count;
        (&x[start..start + v], &x[start + v..start + 2 * v])
    }

    /// The flow-value variable `F` of an LP solution vector.
    pub fn flow_value(&self, x: &[f64]) -> f64 {
        x[self.edge_count + 2 * self.vertex_count]
    }
}

/// Builds the Section-5 LP for a flow instance.
///
/// # Panics
///
/// Panics if the instance has no arcs.
pub fn build_flow_lp(instance: &FlowInstance, config: &FlowLpConfig) -> FlowLp {
    let graph = &instance.graph;
    let e = graph.m();
    assert!(e > 0, "the flow network needs at least one arc");
    let v_all = graph.n();
    let m_bound = graph.magnitude_bound() as f64;

    // Constraint index for every vertex except the source.
    let mut vertex_index = vec![None; v_all];
    let mut next = 0usize;
    for v in 0..v_all {
        if v != instance.source {
            vertex_index[v] = Some(next);
            next += 1;
        }
    }
    let n_constraints = next;
    let sink_index = vertex_index[instance.sink].expect("sink differs from source");

    // Penalty constants.
    let (lambda, flow_reward) = if config.paper_constants {
        let m_tilde = 8.0 * (e as f64).powi(2) * m_bound.powi(3);
        (
            440.0 * (e as f64).powi(4) * m_tilde * m_tilde * m_bound.powi(3),
            2.0 * v_all as f64 * m_tilde,
        )
    } else {
        let m_tilde = 2.0 * (e as f64 * m_bound + 1.0);
        let reward = 4.0 * v_all as f64 * m_tilde;
        (4.0 * reward, reward)
    };

    // Cost perturbation: uniformly random multiple of 1/(4|E|²M²) in
    // {1, ..., 2|E|M} · 1/(4|E|²M²) per edge.
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let unit = 1.0 / (4.0 * (e as f64).powi(2) * m_bound * m_bound);
    let max_multiple = (2.0 * e as f64 * m_bound) as u64;
    let perturbation: Vec<f64> = (0..e)
        .map(|_| rng.gen_range(1..=max_multiple.max(1)) as f64 * unit)
        .collect();

    // Constraint matrix A ∈ R^{m_vars × n_constraints}, row per variable.
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    // Edge variables: row = incidence column of the edge (head +1, tail −1),
    // restricted to non-source vertices.
    for (idx, arc) in graph.arcs().iter().enumerate() {
        if let Some(h) = vertex_index[arc.to] {
            triplets.push((idx, h, 1.0));
        }
        if let Some(t) = vertex_index[arc.from] {
            triplets.push((idx, t, -1.0));
        }
    }
    // y variables: +I.
    for j in 0..n_constraints {
        triplets.push((e + j, j, 1.0));
    }
    // z variables: −I.
    for j in 0..n_constraints {
        triplets.push((e + n_constraints + j, j, -1.0));
    }
    // F variable: −e_t.
    let f_row = e + 2 * n_constraints;
    triplets.push((f_row, sink_index, -1.0));
    let m_vars = e + 2 * n_constraints + 1;
    let a = CsrMatrix::from_triplets(m_vars, n_constraints, &triplets);

    // Costs.
    let mut c = Vec::with_capacity(m_vars);
    for (idx, arc) in graph.arcs().iter().enumerate() {
        c.push(arc.cost as f64 + perturbation[idx]);
    }
    for _ in 0..2 * n_constraints {
        c.push(lambda);
    }
    c.push(-flow_reward);

    // Bounds.
    let slack_cap = 4.0 * (v_all as f64 * m_bound + e as f64 * m_bound);
    let flow_cap = 2.0 * v_all as f64 * m_bound;
    let mut lower = vec![0.0; m_vars];
    let mut upper = Vec::with_capacity(m_vars);
    for arc in graph.arcs() {
        upper.push(arc.capacity as f64);
    }
    for _ in 0..2 * n_constraints {
        upper.push(slack_cap);
    }
    upper.push(flow_cap);
    // Slight negative lower bound is not allowed; keep exactly zero.
    lower.iter_mut().for_each(|l| *l = 0.0);

    // Demand vector b = 0.
    let b = vec![0.0; n_constraints];

    // Interior point: x = c/2, F = |V|·M, slacks chosen to satisfy the
    // equality constraints with a comfortable margin.
    let mut x0 = Vec::with_capacity(m_vars);
    for arc in graph.arcs() {
        x0.push(arc.capacity as f64 / 2.0);
    }
    // Residual r = F·e_t − B·(c/2) must equal y − z.
    let mut residual = vec![0.0; n_constraints];
    let f_init = v_all as f64 * m_bound;
    residual[sink_index] += f_init;
    for arc in graph.arcs() {
        let half = arc.capacity as f64 / 2.0;
        if let Some(h) = vertex_index[arc.to] {
            residual[h] -= half;
        }
        if let Some(t) = vertex_index[arc.from] {
            residual[t] += half;
        }
    }
    let base = slack_cap / 4.0;
    let mut y0 = vec![base; n_constraints];
    let mut z0 = vec![base; n_constraints];
    for j in 0..n_constraints {
        if residual[j] >= 0.0 {
            y0[j] += residual[j];
        } else {
            z0[j] -= residual[j];
        }
    }
    x0.extend(y0);
    x0.extend(z0);
    x0.push(f_init);

    let lp = LpInstance {
        a,
        b,
        c,
        lower,
        upper,
    };
    FlowLp {
        lp,
        interior_point: x0,
        edge_count: e,
        vertex_count: n_constraints,
        vertex_index,
        perturbation,
        lambda,
        flow_reward,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{generators, DiGraph};
    use bcc_linalg::vector;

    fn diamond() -> FlowInstance {
        let g = DiGraph::from_arcs(4, [(0, 1, 2, 1), (1, 3, 2, 1), (0, 2, 3, 5), (2, 3, 3, 5)]);
        FlowInstance::new(g, 0, 3)
    }

    #[test]
    fn dimensions_match_section_5() {
        let inst = diamond();
        let flow_lp = build_flow_lp(&inst, &FlowLpConfig::default());
        // |E| + 2(|V|−1) + 1 variables, |V|−1 constraints.
        assert_eq!(flow_lp.lp.m(), 4 + 2 * 3 + 1);
        assert_eq!(flow_lp.lp.n(), 3);
        assert_eq!(flow_lp.edge_count, 4);
        assert_eq!(flow_lp.vertex_count, 3);
        flow_lp.lp.validate();
    }

    #[test]
    fn interior_point_is_feasible_and_interior() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        for trial in 0..10 {
            let inst = generators::random_flow_instance(7, 0.3, 5, &mut rng);
            let flow_lp = build_flow_lp(&inst, &FlowLpConfig::default());
            let x0 = &flow_lp.interior_point;
            assert!(flow_lp.lp.is_interior(x0), "trial {trial} not interior");
            let residual = flow_lp.lp.equality_residual(x0);
            assert!(
                vector::norm_inf(&residual) < 1e-9,
                "trial {trial} residual {residual:?}"
            );
        }
    }

    #[test]
    fn optimal_integral_flow_beats_other_feasible_flows_in_the_lp_objective() {
        // Embed the known optimum of the diamond instance (x = (2,2,3,3),
        // F = 5, slacks 0) and check it has lower LP objective than the
        // embedding of any other feasible integral flow.
        let inst = diamond();
        let flow_lp = build_flow_lp(&inst, &FlowLpConfig::default());
        let embed = |flow: &[i64], value: i64| -> Vec<f64> {
            let mut x: Vec<f64> = flow.iter().map(|&f| f as f64).collect();
            x.extend(vec![0.0; 2 * flow_lp.vertex_count]);
            x.push(value as f64);
            x
        };
        let optimal = embed(&[2, 2, 3, 3], 5);
        // The embedding satisfies the equality constraints.
        assert!(vector::norm_inf(&flow_lp.lp.equality_residual(&optimal)) < 1e-9);
        let suboptimal_value = embed(&[2, 2, 2, 2], 4); // smaller flow value
        let costlier = embed(&[1, 1, 3, 3], 4); // same value as above, higher cost
        let obj_opt = flow_lp.lp.objective(&optimal);
        assert!(obj_opt < flow_lp.lp.objective(&suboptimal_value));
        assert!(flow_lp.lp.objective(&suboptimal_value) < flow_lp.lp.objective(&costlier));
    }

    #[test]
    fn perturbation_is_small_and_positive() {
        let inst = diamond();
        let flow_lp = build_flow_lp(&inst, &FlowLpConfig::default());
        for &p in &flow_lp.perturbation {
            assert!(p > 0.0);
            assert!(p <= 0.5, "perturbation {p} must stay below 1/2");
        }
    }

    #[test]
    fn paper_constants_are_larger_than_laboratory_ones() {
        let inst = diamond();
        let lab = build_flow_lp(&inst, &FlowLpConfig::default());
        let paper = build_flow_lp(
            &inst,
            &FlowLpConfig {
                paper_constants: true,
                ..FlowLpConfig::default()
            },
        );
        assert!(paper.lambda > lab.lambda);
        assert!(paper.flow_reward > lab.flow_reward);
    }

    #[test]
    fn accessors_slice_the_solution_vector_correctly() {
        let inst = diamond();
        let flow_lp = build_flow_lp(&inst, &FlowLpConfig::default());
        let x0 = flow_lp.interior_point.clone();
        assert_eq!(flow_lp.edge_flows(&x0).len(), 4);
        let (y, z) = flow_lp.slacks(&x0);
        assert_eq!(y.len(), 3);
        assert_eq!(z.len(), 3);
        assert_eq!(flow_lp.flow_value(&x0), 4.0 * 5.0);
    }
}
