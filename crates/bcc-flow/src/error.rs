//! Typed errors of the min-cost max-flow pipeline.

use bcc_lp::LpError;

/// Errors raised by the BCC min-cost max-flow pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The interior point solver rejected the Section-5 LP encoding.
    Lp(LpError),
    /// The instance has no arcs, so there is no flow to route.
    EmptyInstance,
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Lp(e) => write!(f, "flow LP solve failed: {e}"),
            FlowError::EmptyInstance => write!(f, "flow instance has no arcs"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Lp(e) => Some(e),
            FlowError::EmptyInstance => None,
        }
    }
}

impl From<LpError> for FlowError {
    fn from(e: LpError) -> Self {
        FlowError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = FlowError::Lp(LpError::NotInterior);
        assert!(err.to_string().contains("flow LP"));
        assert!(err.to_string().contains("interior"));
        assert!(FlowError::EmptyInstance.to_string().contains("no arcs"));
    }
}
