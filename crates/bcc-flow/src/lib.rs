//! # bcc-flow
//!
//! Exact minimum cost maximum flow in the Broadcast Congested Clique
//! (Section 5 / Theorem 1.1 of *"The Laplacian Paradigm in the Broadcast
//! Congested Clique"*, Forster & de Vos, PODC 2022), plus the centralized
//! combinatorial baselines used as ground truth.
//!
//! * [`formulation`] — the Section-5 LP encoding (slack variables, flow-value
//!   reward, cost perturbation, interior starting point).
//! * [`mcmf`] — the end-to-end BCC algorithm: LP solver + Gremban/Laplacian
//!   Gram solves + rounding to the exact integral optimum.
//! * [`baselines`] — Dinic's max flow and successive-shortest-path min-cost
//!   max-flow.
//!
//! ## Example
//!
//! ```
//! use bcc_flow::baselines::ssp_min_cost_max_flow;
//! use bcc_flow::mcmf::{min_cost_max_flow_bcc, McmfOptions};
//! use bcc_graph::{DiGraph, FlowInstance};
//! use bcc_runtime::{ModelConfig, Network};
//!
//! let g = DiGraph::from_arcs(3, [(0, 1, 2, 1), (1, 2, 2, 1), (0, 2, 1, 5)]);
//! let instance = FlowInstance::new(g, 0, 2);
//! let mut net = Network::clique(ModelConfig::bcc(), 3);
//! let result = min_cost_max_flow_bcc(&mut net, &instance, &McmfOptions::default());
//! let baseline = ssp_min_cost_max_flow(&instance);
//! assert_eq!(result.flow.value, baseline.value);
//! assert_eq!(result.flow.cost, baseline.cost);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod error;
pub mod formulation;
pub mod mcmf;

pub use baselines::{dinic_max_flow, ssp_min_cost_max_flow, IntegralFlow};
pub use error::FlowError;
pub use formulation::{build_flow_lp, FlowLp, FlowLpConfig};
pub use mcmf::{
    min_cost_max_flow_bcc, try_min_cost_max_flow_bcc, McmfOptions, McmfResult, SddGramSolver,
    WeightStrategyChoice,
};
