//! Exact minimum cost maximum flow in the Broadcast Congested Clique
//! (Theorem 1.1).
//!
//! The pipeline is exactly Figure 1 of the paper: the flow instance is
//! encoded as the LP of Section 5, the LP is solved with the Lee–Sidford
//! interior point method of Section 4, every inner linear system `AᵀDA` is
//! symmetric diagonally dominant and is solved through the Gremban reduction
//! and the Laplacian solver of Section 3 (Lemma 5.1), and finally the
//! near-optimal fractional solution is rounded to the exact integral optimum
//! (unique with high probability thanks to the cost perturbation).

use bcc_graph::FlowInstance;
use bcc_laplacian::{solve_sdd, SddMatrix, SddSolveMode};
use bcc_linalg::CsrMatrix;
use bcc_lp::gram::GramSolver;
use bcc_lp::{try_lp_solve, LpError, LpOptions, WeightStrategy};
use bcc_runtime::Network;

use crate::baselines::IntegralFlow;
use crate::error::FlowError;
use crate::formulation::{build_flow_lp, FlowLp, FlowLpConfig};

/// Options of [`min_cost_max_flow_bcc`].
#[derive(Debug, Clone)]
pub struct McmfOptions {
    /// Seed for the cost perturbation and the solver randomness.
    pub seed: u64,
    /// Additive accuracy the LP is solved to before rounding.
    pub lp_epsilon: f64,
    /// Weight strategy of the interior point method.
    pub strategy: WeightStrategyChoice,
    /// How the SDD systems are solved (full sparsifier pipeline or the
    /// exact-preconditioner shortcut; see `bcc_laplacian::SddSolveMode`).
    pub full_laplacian_pipeline: bool,
    /// Use the paper's worst-case penalty constants in the LP formulation.
    pub paper_constants: bool,
    /// Hard cap on Newton steps (safety valve for experiments).
    pub max_newton_steps: usize,
}

/// Which weight function the interior point method uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightStrategyChoice {
    /// Regularized Lewis weights (the paper's choice, `Õ(√n)` iterations).
    Lewis,
    /// Uniform weights (classical log barrier, `Õ(√m)` iterations).
    Uniform,
}

impl Default for McmfOptions {
    fn default() -> Self {
        McmfOptions {
            seed: 7,
            lp_epsilon: 1e-2,
            strategy: WeightStrategyChoice::Lewis,
            full_laplacian_pipeline: false,
            paper_constants: false,
            max_newton_steps: 60_000,
        }
    }
}

/// Result of the Broadcast Congested Clique min-cost max-flow computation.
#[derive(Debug, Clone, PartialEq)]
pub struct McmfResult {
    /// The exact integral min-cost max-flow (after rounding).
    pub flow: IntegralFlow,
    /// The fractional edge flows returned by the LP solver (before rounding).
    pub fractional: Vec<f64>,
    /// Whether the rounded flow passed the feasibility check.
    pub rounded_feasible: bool,
    /// Path-following iterations of the LP solver.
    pub path_iterations: usize,
    /// Gram (Laplacian) solves performed.
    pub gram_solves: usize,
    /// Total rounds charged on the network.
    pub rounds: u64,
}

/// The Gram-solver of Lemma 5.1: `AᵀDA` for the Section-5 constraint matrix is
/// symmetric diagonally dominant, so it is solved through the Gremban
/// reduction and the BCC Laplacian solver.
#[derive(Debug, Clone)]
pub struct SddGramSolver {
    mode: SddSolveMode,
    precision: f64,
}

impl SddGramSolver {
    /// Solver using the exact-preconditioner shortcut (default for sweeps).
    pub fn new(precision: f64) -> Self {
        SddGramSolver {
            mode: SddSolveMode::ExactPreconditioner,
            precision,
        }
    }

    /// Solver running the full sparsifier + Chebyshev pipeline per solve.
    pub fn with_full_pipeline(precision: f64, config: bcc_sparsifier::SparsifierConfig) -> Self {
        SddGramSolver {
            mode: SddSolveMode::Full(config),
            precision,
        }
    }
}

impl GramSolver for SddGramSolver {
    fn solve(
        &self,
        net: &mut Network,
        a: &CsrMatrix,
        d: &[f64],
        y: &[f64],
    ) -> Result<Vec<f64>, LpError> {
        // Assemble AᵀDA as symmetric triplets. For the Section-5 matrix this
        // is B·D₁·Bᵀ + D₂ + D₃ + e_t·D₄·e_tᵀ — diagonally dominant with
        // non-positive off-diagonals (Lemma 5.1); assembling it row-by-row
        // only needs the rows of A a vertex already knows.
        let n = a.cols();
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        for r in 0..a.rows() {
            let entries: Vec<(usize, f64)> = a.row(r).collect();
            let dr = d[r];
            for &(ci, vi) in &entries {
                for &(cj, vj) in &entries {
                    if ci <= cj {
                        triplets.push((ci, cj, dr * vi * vj));
                    }
                }
            }
        }
        // Lemma 5.1 guarantees diagonal dominance for the Section-5 flow LP;
        // on a general LP the precondition can fail, which surfaces as a
        // typed error the LP driver propagates instead of a panic.
        let matrix = SddMatrix::from_triplets(n, triplets).map_err(|e| LpError::GramSolve {
            solver: self.name(),
            message: format!("AᵀDA is not symmetric diagonally dominant: {e}"),
        })?;
        Ok(solve_sdd(net, &matrix, y, self.precision, &self.mode))
    }

    fn name(&self) -> &'static str {
        "gremban-laplacian"
    }
}

/// Rounds the fractional LP flow to an integral flow, clamping to capacities.
fn round_flow(instance: &FlowInstance, fractional: &[f64]) -> Vec<i64> {
    instance
        .graph
        .arcs()
        .iter()
        .zip(fractional)
        .map(|(arc, &f)| (f.round() as i64).clamp(0, arc.capacity))
        .collect()
}

/// Computes an exact minimum cost maximum `s`-`t` flow in the Broadcast
/// Congested Clique (Theorem 1.1).
///
/// Rounds are charged on `net`; the dominant contribution is the
/// `Õ(√n)` path-following iterations, each performing one Laplacian solve.
///
/// # Errors
///
/// * [`FlowError::EmptyInstance`] — the instance has no arcs.
/// * [`FlowError::Lp`] — the interior point solver rejected the LP encoding.
pub fn try_min_cost_max_flow_bcc(
    net: &mut Network,
    instance: &FlowInstance,
    options: &McmfOptions,
) -> Result<McmfResult, FlowError> {
    if instance.graph.m() == 0 {
        return Err(FlowError::EmptyInstance);
    }
    let rounds_before = net.ledger().total_rounds();
    net.begin_phase("mcmf");
    let flow_lp: FlowLp = build_flow_lp(
        instance,
        &FlowLpConfig {
            seed: options.seed,
            paper_constants: options.paper_constants,
        },
    );

    let mut lp_options = LpOptions::new(options.lp_epsilon, flow_lp.lp.m(), options.seed);
    lp_options.path.max_newton_steps = options.max_newton_steps;
    match options.strategy {
        WeightStrategyChoice::Uniform => {
            lp_options = lp_options.with_uniform_weights();
        }
        WeightStrategyChoice::Lewis => {
            let mut lewis = bcc_lp::lewis::LewisOptions::laboratory(flow_lp.lp.m(), options.seed);
            lewis.iterations = 6;
            lewis.max_sketch_dimension = Some(10);
            lewis.eta = 0.5;
            lp_options.strategy = WeightStrategy::RegularizedLewis { options: lewis };
            lp_options.path.weight_refresh_sweeps = 1;
        }
    }

    let gram_precision = 1e-8;
    let solver: Box<dyn GramSolver> = if options.full_laplacian_pipeline {
        let config = bcc_sparsifier::SparsifierConfig::laboratory(
            2 * flow_lp.lp.n().max(2),
            4 * flow_lp.lp.m().max(4),
            0.5,
            options.seed,
        )
        .with_t(4)
        .with_k(2);
        Box::new(SddGramSolver::with_full_pipeline(gram_precision, config))
    } else {
        Box::new(SddGramSolver::new(gram_precision))
    };

    let solution = try_lp_solve(
        net,
        &flow_lp.lp,
        &flow_lp.interior_point,
        &lp_options,
        solver.as_ref(),
    )?;

    let fractional = flow_lp.edge_flows(&solution.x).to_vec();
    let rounded = round_flow(instance, &fractional);
    let as_f64: Vec<f64> = rounded.iter().map(|&f| f as f64).collect();
    let rounded_feasible = instance.is_feasible(&as_f64, 1e-9);
    let value = instance.value(&as_f64).round() as i64;
    let cost = instance.cost(&as_f64).round() as i64;

    Ok(McmfResult {
        flow: IntegralFlow {
            flow: rounded,
            value,
            cost,
        },
        fractional,
        rounded_feasible,
        path_iterations: solution.path_iterations(),
        gram_solves: solution.gram_solves(),
        rounds: net.ledger().total_rounds() - rounds_before,
    })
}

/// Panicking variant of [`try_min_cost_max_flow_bcc`], kept for the
/// pre-`Session` API.
///
/// # Panics
///
/// Panics if the instance is empty or its LP encoding is rejected.
pub fn min_cost_max_flow_bcc(
    net: &mut Network,
    instance: &FlowInstance,
    options: &McmfOptions,
) -> McmfResult {
    try_min_cost_max_flow_bcc(net, instance, options).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::ssp_min_cost_max_flow;
    use bcc_graph::{generators, DiGraph};
    use bcc_runtime::ModelConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn diamond() -> FlowInstance {
        let g = DiGraph::from_arcs(4, [(0, 1, 2, 1), (1, 3, 2, 1), (0, 2, 3, 5), (2, 3, 3, 5)]);
        FlowInstance::new(g, 0, 3)
    }

    #[test]
    fn sdd_gram_solver_solves_flow_gram_systems() {
        let inst = diamond();
        let flow_lp = build_flow_lp(&inst, &FlowLpConfig::default());
        let m = flow_lp.lp.m();
        let d: Vec<f64> = (0..m).map(|i| 0.5 + (i % 3) as f64).collect();
        let x_true: Vec<f64> = (0..flow_lp.lp.n()).map(|i| (i as f64) - 1.0).collect();
        let gram = flow_lp.lp.a.gram_with_diagonal(&d);
        let y = gram.matvec(&x_true);
        let mut net = Network::clique(ModelConfig::bcc(), inst.graph.n());
        let solver = SddGramSolver::new(1e-9);
        let x = solver.solve(&mut net, &flow_lp.lp.a, &d, &y).unwrap();
        assert!(bcc_linalg::vector::approx_eq(&x, &x_true, 1e-4), "{x:?}");
        assert_eq!(solver.name(), "gremban-laplacian");
    }

    #[test]
    fn sdd_gram_solver_rejects_non_sdd_systems_with_a_typed_error() {
        // A single row (1, 2) makes AᵀDA = [[1, 2], [2, 4]]: row 0 has
        // diagonal 1 < off-diagonal sum 2, so the matrix is not diagonally
        // dominant and the reduction's precondition fails.
        let a = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 2.0)]);
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let solver = SddGramSolver::new(1e-9);
        let err = solver
            .solve(&mut net, &a, &[1.0], &[1.0, -1.0])
            .unwrap_err();
        match err {
            LpError::GramSolve { solver, message } => {
                assert_eq!(solver, "gremban-laplacian");
                assert!(message.contains("diagonally dominant"), "{message}");
            }
            other => panic!("expected a GramSolve error, got {other:?}"),
        }
    }

    #[test]
    fn diamond_instance_matches_the_ssp_baseline_exactly() {
        let inst = diamond();
        let baseline = ssp_min_cost_max_flow(&inst);
        let mut net = Network::clique(ModelConfig::bcc(), inst.graph.n());
        let result = min_cost_max_flow_bcc(&mut net, &inst, &McmfOptions::default());
        assert!(result.rounded_feasible);
        assert_eq!(result.flow.value, baseline.value);
        assert_eq!(result.flow.cost, baseline.cost);
        assert_eq!(result.flow.flow, baseline.flow);
        assert!(result.rounds > 0);
        assert!(result.path_iterations > 0);
    }

    #[test]
    fn uniform_weight_ablation_also_finds_the_optimum() {
        let inst = diamond();
        let baseline = ssp_min_cost_max_flow(&inst);
        let mut net = Network::clique(ModelConfig::bcc(), inst.graph.n());
        let options = McmfOptions {
            strategy: WeightStrategyChoice::Uniform,
            ..McmfOptions::default()
        };
        let result = min_cost_max_flow_bcc(&mut net, &inst, &options);
        assert!(result.rounded_feasible);
        assert_eq!(result.flow.value, baseline.value);
        assert_eq!(result.flow.cost, baseline.cost);
    }

    #[test]
    fn random_small_instances_match_the_baseline() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut exact_matches = 0;
        let trials = 4;
        for trial in 0..trials {
            let inst = generators::random_flow_instance(5, 0.25, 3, &mut rng);
            let baseline = ssp_min_cost_max_flow(&inst);
            let mut net = Network::clique(ModelConfig::bcc(), inst.graph.n());
            let options = McmfOptions {
                seed: 100 + trial,
                ..McmfOptions::default()
            };
            let result = min_cost_max_flow_bcc(&mut net, &inst, &options);
            assert!(
                result.rounded_feasible,
                "trial {trial} rounded flow infeasible"
            );
            assert_eq!(result.flow.value, baseline.value, "trial {trial} value");
            if result.flow.cost == baseline.cost {
                exact_matches += 1;
            } else {
                // Cost may only be larger, never smaller than the optimum.
                assert!(result.flow.cost >= baseline.cost, "trial {trial}");
            }
        }
        assert!(
            exact_matches >= trials - 1,
            "only {exact_matches}/{trials} instances matched the optimal cost"
        );
    }
}
