//! Centralized combinatorial baselines: Dinic's maximum flow and
//! successive-shortest-path minimum cost maximum flow.
//!
//! These are the ground truth the LP-based Broadcast Congested Clique
//! algorithm of Theorem 1.1 is compared against in tests and in experiment
//! E9. They operate on the same [`FlowInstance`] type and always return exact
//! integral flows.

use bcc_graph::FlowInstance;

/// An exact integral flow together with its value and cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegralFlow {
    /// Flow on every arc (same indexing as the instance's arcs).
    pub flow: Vec<i64>,
    /// Flow value (net outflow of the source).
    pub value: i64,
    /// Total cost `Σ q_e·f_e`.
    pub cost: i64,
}

#[derive(Debug, Clone, Copy)]
struct ResidualArc {
    to: usize,
    capacity: i64,
    cost: i64,
    /// Index of the original arc (`usize::MAX` for reverse arcs).
    original: usize,
}

struct ResidualGraph {
    arcs: Vec<ResidualArc>,
    adjacency: Vec<Vec<usize>>,
}

impl ResidualGraph {
    fn new(instance: &FlowInstance) -> Self {
        let n = instance.graph.n();
        let mut arcs = Vec::with_capacity(2 * instance.graph.m());
        let mut adjacency = vec![Vec::new(); n];
        for (idx, arc) in instance.graph.arcs().iter().enumerate() {
            adjacency[arc.from].push(arcs.len());
            arcs.push(ResidualArc {
                to: arc.to,
                capacity: arc.capacity,
                cost: arc.cost,
                original: idx,
            });
            adjacency[arc.to].push(arcs.len());
            arcs.push(ResidualArc {
                to: arc.from,
                capacity: 0,
                cost: -arc.cost,
                original: usize::MAX,
            });
        }
        ResidualGraph { arcs, adjacency }
    }

    fn extract_flow(&self, instance: &FlowInstance) -> IntegralFlow {
        let mut flow = vec![0i64; instance.graph.m()];
        for (idx, arc) in self.arcs.iter().enumerate() {
            if idx % 2 == 1 {
                // The reverse arc's capacity equals the flow pushed forward.
                let forward = &self.arcs[idx - 1];
                if forward.original != usize::MAX {
                    flow[forward.original] = arc.capacity;
                }
            }
        }
        let value = instance
            .graph
            .out_arcs(instance.source)
            .iter()
            .map(|&a| flow[a])
            .sum::<i64>()
            - instance
                .graph
                .in_arcs(instance.source)
                .iter()
                .map(|&a| flow[a])
                .sum::<i64>();
        let cost = instance
            .graph
            .arcs()
            .iter()
            .zip(&flow)
            .map(|(a, &f)| a.cost * f)
            .sum();
        IntegralFlow { flow, value, cost }
    }
}

/// Dinic's maximum-flow algorithm (exact, `O(V²E)`).
pub fn dinic_max_flow(instance: &FlowInstance) -> IntegralFlow {
    let n = instance.graph.n();
    let mut residual = ResidualGraph::new(instance);
    let source = instance.source;
    let sink = instance.sink;
    loop {
        // BFS level graph.
        let mut level = vec![usize::MAX; n];
        level[source] = 0;
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(v) = queue.pop_front() {
            for &a in &residual.adjacency[v] {
                let arc = residual.arcs[a];
                if arc.capacity > 0 && level[arc.to] == usize::MAX {
                    level[arc.to] = level[v] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        if level[sink] == usize::MAX {
            break;
        }
        // DFS blocking flow.
        let mut iter = vec![0usize; n];
        loop {
            let pushed = dfs_push(&mut residual, &level, &mut iter, source, sink, i64::MAX);
            if pushed == 0 {
                break;
            }
        }
    }
    residual.extract_flow(instance)
}

fn dfs_push(
    residual: &mut ResidualGraph,
    level: &[usize],
    iter: &mut [usize],
    v: usize,
    sink: usize,
    limit: i64,
) -> i64 {
    if v == sink {
        return limit;
    }
    while iter[v] < residual.adjacency[v].len() {
        let a = residual.adjacency[v][iter[v]];
        let arc = residual.arcs[a];
        if arc.capacity > 0 && level[arc.to] == level[v] + 1 {
            let pushed = dfs_push(residual, level, iter, arc.to, sink, limit.min(arc.capacity));
            if pushed > 0 {
                residual.arcs[a].capacity -= pushed;
                residual.arcs[a ^ 1].capacity += pushed;
                return pushed;
            }
        }
        iter[v] += 1;
    }
    0
}

/// Successive shortest path minimum cost maximum flow (exact; Bellman–Ford
/// shortest paths on the residual graph, so negative costs are allowed).
pub fn ssp_min_cost_max_flow(instance: &FlowInstance) -> IntegralFlow {
    let n = instance.graph.n();
    let mut residual = ResidualGraph::new(instance);
    let source = instance.source;
    let sink = instance.sink;
    loop {
        // Bellman–Ford for the cheapest augmenting path.
        let mut dist = vec![i64::MAX; n];
        let mut parent_arc = vec![usize::MAX; n];
        dist[source] = 0;
        for _ in 0..n {
            let mut changed = false;
            for v in 0..n {
                if dist[v] == i64::MAX {
                    continue;
                }
                for &a in &residual.adjacency[v] {
                    let arc = residual.arcs[a];
                    if arc.capacity > 0 && dist[v] + arc.cost < dist[arc.to] {
                        dist[arc.to] = dist[v] + arc.cost;
                        parent_arc[arc.to] = a;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if dist[sink] == i64::MAX {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = i64::MAX;
        let mut v = sink;
        while v != source {
            let a = parent_arc[v];
            bottleneck = bottleneck.min(residual.arcs[a].capacity);
            v = other_endpoint(&residual, a);
        }
        // Augment.
        let mut v = sink;
        while v != source {
            let a = parent_arc[v];
            residual.arcs[a].capacity -= bottleneck;
            residual.arcs[a ^ 1].capacity += bottleneck;
            v = other_endpoint(&residual, a);
        }
    }
    residual.extract_flow(instance)
}

fn other_endpoint(residual: &ResidualGraph, arc_index: usize) -> usize {
    // The paired reverse arc points back to the tail of `arc_index`.
    residual.arcs[arc_index ^ 1].to
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{generators, DiGraph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn diamond() -> FlowInstance {
        // Two parallel 2-arc paths: cheap one with capacity 2, expensive one
        // with capacity 3.
        let g = DiGraph::from_arcs(4, [(0, 1, 2, 1), (1, 3, 2, 1), (0, 2, 3, 5), (2, 3, 3, 5)]);
        FlowInstance::new(g, 0, 3)
    }

    #[test]
    fn dinic_finds_the_maximum_flow_of_the_diamond() {
        let inst = diamond();
        let flow = dinic_max_flow(&inst);
        assert_eq!(flow.value, 5);
        let as_f64: Vec<f64> = flow.flow.iter().map(|&f| f as f64).collect();
        assert!(inst.is_feasible(&as_f64, 1e-9));
    }

    #[test]
    fn ssp_finds_the_min_cost_among_max_flows() {
        let inst = diamond();
        let flow = ssp_min_cost_max_flow(&inst);
        assert_eq!(flow.value, 5);
        // Cheap path saturated (cost 2·2=4), expensive path carries 3 (cost 30).
        assert_eq!(flow.cost, 2 * 2 + 3 * 10);
        assert_eq!(flow.flow, vec![2, 2, 3, 3]);
    }

    #[test]
    fn bottleneck_instance() {
        // 0 -> 1 -> 2 with capacities 5 and 2: max flow 2.
        let g = DiGraph::from_arcs(3, [(0, 1, 5, 1), (1, 2, 2, 1)]);
        let inst = FlowInstance::new(g, 0, 2);
        assert_eq!(dinic_max_flow(&inst).value, 2);
        assert_eq!(ssp_min_cost_max_flow(&inst).value, 2);
    }

    #[test]
    fn ssp_prefers_cheaper_parallel_arcs() {
        // Two parallel arcs 0 -> 1, one cheap one expensive; demand forces both.
        let g = DiGraph::from_arcs(2, [(0, 1, 1, 10), (0, 1, 1, 1)]);
        let inst = FlowInstance::new(g, 0, 1);
        let flow = ssp_min_cost_max_flow(&inst);
        assert_eq!(flow.value, 2);
        assert_eq!(flow.cost, 11);
    }

    #[test]
    fn ssp_and_dinic_agree_on_value_for_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for trial in 0..20 {
            let inst = generators::random_flow_instance(8, 0.25, 6, &mut rng);
            let max_flow = dinic_max_flow(&inst);
            let mcmf = ssp_min_cost_max_flow(&inst);
            assert_eq!(max_flow.value, mcmf.value, "trial {trial}");
            let as_f64: Vec<f64> = mcmf.flow.iter().map(|&f| f as f64).collect();
            assert!(inst.is_feasible(&as_f64, 1e-9), "trial {trial}");
            // Min-cost max-flow never costs more than the Dinic flow of the
            // same value.
            assert!(mcmf.cost <= max_flow.cost, "trial {trial}");
        }
    }

    #[test]
    fn disconnected_sink_gives_zero_flow() {
        let g = DiGraph::from_arcs(3, [(0, 1, 3, 1)]);
        let inst = FlowInstance::new(g, 0, 2);
        assert_eq!(dinic_max_flow(&inst).value, 0);
        assert_eq!(ssp_min_cost_max_flow(&inst).value, 0);
    }
}
