//! Counting-allocator guard for the warm solve path: after one cold solve has
//! grown the [`ScratchArena`] and the output buffer, every further
//! `try_solve_into` on the same solver must perform **zero** heap allocations.
//! This is the property the serving engines' per-worker arenas rely on — a
//! regression here silently reintroduces per-request allocator traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use bcc_graph::generators;
use bcc_laplacian::{LaplacianSolver, ScratchArena};
use bcc_linalg::vector;
use bcc_runtime::{ModelConfig, Network};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Delegates to the system allocator, counting `alloc`/`realloc` calls on the
/// current thread. Const-initialised thread-local state keeps the counter
/// itself allocation-free, so counting never recurses into the allocator.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

fn mean_zero_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let raw: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    vector::remove_mean(&raw)
}

#[test]
fn warm_solve_performs_zero_heap_allocations() {
    let g = generators::random_connected(24, 0.3, 8, &mut ChaCha8Rng::seed_from_u64(11));
    let solver = LaplacianSolver::exact_preconditioner(&g);
    let mut net = Network::clique(ModelConfig::bcc(), g.n());
    let b = mean_zero_rhs(g.n(), 7);

    let mut arena = ScratchArena::new();
    let mut out = Vec::new();
    // Cold solve: grows the arena and the output buffer (and pins the ledger
    // phase), paying all one-time allocations up front.
    let cold = solver
        .try_solve_into(&mut net, &b, 0.25, &mut arena, &mut out)
        .expect("solve succeeds");
    let cold_solution = out.clone();

    let before = allocations();
    let warm = solver
        .try_solve_into(&mut net, &b, 0.25, &mut arena, &mut out)
        .expect("solve succeeds");
    let allocated = allocations() - before;

    assert_eq!(
        allocated, 0,
        "a warm try_solve_into must not touch the heap, performed {allocated} allocations"
    );
    // The warm run is still the same computation, bit for bit.
    assert_eq!(out, cold_solution);
    assert_eq!(warm.iterations, cold.iterations);
}

#[test]
fn warm_solves_stay_allocation_free_across_distinct_right_hand_sides() {
    let g = generators::grid(5, 5);
    let solver = LaplacianSolver::exact_preconditioner(&g);
    let mut net = Network::clique(ModelConfig::bcc(), g.n());

    let mut arena = ScratchArena::new();
    let mut out = Vec::new();
    let warmup = mean_zero_rhs(g.n(), 1);
    solver
        .try_solve_into(&mut net, &warmup, 0.25, &mut arena, &mut out)
        .expect("solve succeeds");

    for seed in 2..6 {
        let b = mean_zero_rhs(g.n(), seed);
        let expected = solver
            .try_solve(&mut net, &b, 0.25)
            .expect("solve succeeds")
            .solution;
        let before = allocations();
        solver
            .try_solve_into(&mut net, &b, 0.25, &mut arena, &mut out)
            .expect("solve succeeds");
        let allocated = allocations() - before;
        assert_eq!(allocated, 0, "rhs seed {seed} allocated on the warm path");
        assert_eq!(out, expected, "warm path diverged on rhs seed {seed}");
    }
}
