//! # bcc-laplacian
//!
//! Laplacian and SDD system solving in the Broadcast Congested Clique
//! (Section 3.3 and Lemma 5.1 of *"The Laplacian Paradigm in the Broadcast
//! Congested Clique"*, Forster & de Vos, PODC 2022).
//!
//! * [`LaplacianSolver`] — Theorem 1.3: sparsifier preprocessing + per-instance
//!   preconditioned Chebyshev solves with `O(log(1/ε)·log(nU/ε))` rounds.
//! * [`sdd`] — the Gremban reduction from symmetric diagonally dominant
//!   systems to Laplacian systems on a virtual doubled graph.
//! * Baselines: [`solver::exact_solve`] (dense ground truth) and
//!   [`solver::cg_baseline`] (centralized conjugate gradients).
//!
//! ## Example
//!
//! ```
//! use bcc_graph::generators;
//! use bcc_laplacian::LaplacianSolver;
//! use bcc_linalg::vector;
//! use bcc_runtime::{ModelConfig, Network};
//!
//! let g = generators::grid(3, 3);
//! let solver = LaplacianSolver::exact_preconditioner(&g);
//! let b = vector::remove_mean(&(0..9).map(|i| i as f64).collect::<Vec<_>>());
//! let mut net = Network::clique(ModelConfig::bcc(), 9);
//! let solve = solver.solve(&mut net, &b, 1e-6);
//! assert!(solver.relative_error(&b, &solve.solution) < 1e-5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod sdd;
pub mod solver;

pub use error::LaplacianError;
pub use sdd::{exact_sdd_solve, solve_sdd, NotSddError, SddMatrix, SddSolveMode};
pub use solver::{
    cg_baseline, exact_solve, LaplacianSolve, LaplacianSolveStats, LaplacianSolver, ScratchArena,
};
