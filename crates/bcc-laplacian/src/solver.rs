//! The Broadcast Congested Clique Laplacian solver (Section 3.3, Theorem 1.3).
//!
//! The solver has two stages:
//!
//! 1. **Preprocessing** — compute a `(1 ± 1/2)`-spectral sparsifier `H` of the
//!    input graph with the ad-hoc algorithm of Section 3.2. Because every
//!    sparsifier edge is explicitly broadcast during that algorithm, at the
//!    end *every vertex knows the entire sparsifier*, so any computation with
//!    `L_H` can subsequently be done internally for free.
//! 2. **Per-instance solve** — preconditioned Chebyshev iteration
//!    (Theorem 2.3 / Corollary 2.4) with `A = L_G`, `B = (1 + 1/2)·L_H`,
//!    `κ = 3`. Each iteration multiplies `L_G` by a vector — the only step
//!    that needs communication: every vertex broadcasts its coordinate
//!    (`O(log(nU/ε))` bits), then applies its Laplacian row locally — and
//!    solves one system in `L_H` internally.

use bcc_graph::{laplacian, Graph};
use bcc_linalg::{chebyshev, vector, DenseMatrix, FactoredPsd, SolveScratch};
use bcc_runtime::{payload, Network};
use bcc_sparsifier::{quality, sparsify_ad_hoc, SparsifierConfig, SparsifierOutput};

use crate::error::LaplacianError;

/// Result of one Laplacian solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LaplacianSolve {
    /// The approximate solution `y` with `‖x − y‖_{L_G} ≤ ε‖x‖_{L_G}`.
    pub solution: Vec<f64>,
    /// Chebyshev iterations performed (`O(log(1/ε))` by Corollary 2.4).
    pub iterations: usize,
    /// Rounds charged for this instance (excluding preprocessing).
    pub rounds: u64,
}

/// Statistics of an in-place solve ([`LaplacianSolver::try_solve_into`]);
/// the solution itself is written into the caller's buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplacianSolveStats {
    /// Chebyshev iterations performed.
    pub iterations: usize,
    /// Rounds charged for this instance (excluding preprocessing).
    pub rounds: u64,
}

/// Per-worker reusable solve state: the [`SolveScratch`] work vectors of the
/// Chebyshev iteration plus a right-hand-side staging buffer. A worker that
/// keeps one arena across requests performs zero heap allocations per warm
/// solve (buffers grow to the largest `n` seen and stay there until
/// [`ScratchArena::release`]).
#[derive(Debug, Clone, Default)]
pub struct ScratchArena {
    scratch: SolveScratch,
    rhs: Vec<f64>,
}

impl ScratchArena {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        ScratchArena::default()
    }

    /// An arena pre-sized for dimension `n`, so the first solve at that size
    /// already allocates nothing.
    pub fn with_dimension(n: usize) -> Self {
        ScratchArena {
            scratch: SolveScratch::with_dimension(n),
            rhs: Vec::with_capacity(n),
        }
    }

    /// The largest dimension the arena can serve without allocating.
    pub fn dimension_capacity(&self) -> usize {
        self.scratch.dimension_capacity().min(self.rhs.capacity())
    }

    /// Releases all buffer memory (shrink-on-idle for long-lived workers).
    pub fn release(&mut self) {
        self.scratch.release();
        self.rhs = Vec::new();
    }
}

/// The preprocessed solver state (Theorem 1.3).
#[derive(Debug, Clone)]
pub struct LaplacianSolver {
    graph: Graph,
    sparsifier: Graph,
    /// Dense copy of `(1 + 1/2)·L_H`, factor-solved internally by every vertex.
    preconditioner: DenseMatrix,
    /// The preconditioner factored once at preprocessing time; `None` when
    /// the regularized matrix is numerically singular, in which case each
    /// solve falls back to eliminating per iteration (and panics exactly
    /// where the unfactored path always did).
    factored: Option<FactoredPsd>,
    /// The condition number of the Chebyshev iteration, computed once at
    /// preprocessing time (the certificate behind it is an `O(n³)`
    /// eigensolve — far too expensive to repeat per request).
    kappa: f64,
    preprocessing_rounds: u64,
    max_weight: f64,
}

/// The relative condition number the Chebyshev iteration uses for the pair
/// `(graph, sparsifier)`; see [`LaplacianSolver::kappa`].
fn kappa_of(graph: &Graph, sparsifier: &Graph) -> f64 {
    let eps = quality::achieved_epsilon(graph, sparsifier);
    if !eps.is_finite() || eps >= 1.0 {
        // Degenerate sparsifier; fall back to a large but finite κ.
        return 100.0;
    }
    ((1.0 + eps) / (1.0 - eps)).max(3.0)
}

impl LaplacianSolver {
    /// Runs the preprocessing stage: a `(1 ± 1/2)`-spectral sparsifier of
    /// `graph` computed with `config`, charged on `net`.
    ///
    /// # Errors
    ///
    /// * [`LaplacianError::Disconnected`] — the solver's error guarantee is
    ///   stated per connected component; callers should solve per component.
    /// * [`LaplacianError::NetworkSizeMismatch`] — `net` does not simulate one
    ///   processor per vertex.
    pub fn try_preprocess(
        net: &mut Network,
        graph: &Graph,
        config: &SparsifierConfig,
    ) -> Result<Self, LaplacianError> {
        if net.n() != graph.n() {
            return Err(LaplacianError::NetworkSizeMismatch {
                network: net.n(),
                graph: graph.n(),
            });
        }
        if !graph.is_connected() {
            return Err(LaplacianError::Disconnected);
        }
        let rounds_before = net.ledger().total_rounds();
        net.begin_phase("laplacian preprocessing");
        let SparsifierOutput { sparsifier, .. } = sparsify_ad_hoc(net, graph, config);
        let preprocessing_rounds = net.ledger().total_rounds() - rounds_before;
        let scaled = sparsifier.map_weights(|e| 1.5 * e.weight);
        let preconditioner = DenseMatrix::from_rows(&laplacian::laplacian_dense(&scaled));
        Ok(LaplacianSolver {
            max_weight: graph.max_weight().max(1.0),
            kappa: kappa_of(graph, &sparsifier),
            factored: preconditioner.factor_psd(),
            graph: graph.clone(),
            sparsifier,
            preconditioner,
            preprocessing_rounds,
        })
    }

    /// Panicking variant of [`LaplacianSolver::try_preprocess`], kept for the
    /// pre-`Session` API.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or the network size is wrong.
    pub fn preprocess(net: &mut Network, graph: &Graph, config: &SparsifierConfig) -> Self {
        Self::try_preprocess(net, graph, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a solver whose "sparsifier" is the graph itself (no
    /// preprocessing rounds). Useful as a baseline and in tests: it makes the
    /// Chebyshev condition number exactly 3 with a perfect preconditioner.
    ///
    /// # Errors
    ///
    /// Returns [`LaplacianError::Disconnected`] for a disconnected graph.
    pub fn try_exact_preconditioner(graph: &Graph) -> Result<Self, LaplacianError> {
        if !graph.is_connected() {
            return Err(LaplacianError::Disconnected);
        }
        let scaled = graph.map_weights(|e| 1.5 * e.weight);
        let preconditioner = DenseMatrix::from_rows(&laplacian::laplacian_dense(&scaled));
        Ok(LaplacianSolver {
            max_weight: graph.max_weight().max(1.0),
            kappa: kappa_of(graph, graph),
            factored: preconditioner.factor_psd(),
            graph: graph.clone(),
            sparsifier: graph.clone(),
            preconditioner,
            preprocessing_rounds: 0,
        })
    }

    /// Panicking variant of [`LaplacianSolver::try_exact_preconditioner`].
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn exact_preconditioner(graph: &Graph) -> Self {
        Self::try_exact_preconditioner(graph).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The sparsifier computed during preprocessing.
    pub fn sparsifier(&self) -> &Graph {
        &self.sparsifier
    }

    /// Rounds spent in preprocessing.
    pub fn preprocessing_rounds(&self) -> u64 {
        self.preprocessing_rounds
    }

    /// The spectral quality `ε` actually achieved by the preprocessing
    /// sparsifier (certificate, computed centrally; not charged).
    pub fn sparsifier_epsilon(&self) -> f64 {
        quality::achieved_epsilon(&self.graph, &self.sparsifier)
    }

    /// The relative condition number `κ` used by the Chebyshev iteration.
    /// With a `(1 ± ε_H)` sparsifier this is `(1 + ε_H)/(1 − ε_H)`, the value
    /// Corollary 2.4 instantiates with `ε_H = 1/2` as `κ = 3`; if the measured
    /// sparsifier quality is worse, the larger measured value is used so the
    /// iteration stays sound. Computed once at preprocessing time.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// Solves `L_G x = b` up to `‖x − y‖_{L_G} ≤ ε‖x‖_{L_G}` (Theorem 1.3).
    ///
    /// `b` must be orthogonal to the all-ones vector (a Laplacian system is
    /// only solvable for such right-hand sides); the method projects `b`
    /// accordingly and returns a mean-zero solution.
    ///
    /// # Errors
    ///
    /// * [`LaplacianError::InvalidEpsilon`] — `epsilon` outside `(0, 1/2]`.
    /// * [`LaplacianError::DimensionMismatch`] — `b` has the wrong length.
    pub fn try_solve(
        &self,
        net: &mut Network,
        b: &[f64],
        epsilon: f64,
    ) -> Result<LaplacianSolve, LaplacianError> {
        let mut arena = ScratchArena::new();
        self.try_solve_with(net, b, epsilon, &mut arena)
    }

    /// [`LaplacianSolver::try_solve`] over a caller-provided [`ScratchArena`]
    /// so the Chebyshev work vectors are reused across solves. Bit-identical
    /// to `try_solve`; only the solution vector itself is allocated.
    ///
    /// # Errors
    ///
    /// As for [`LaplacianSolver::try_solve`].
    pub fn try_solve_with(
        &self,
        net: &mut Network,
        b: &[f64],
        epsilon: f64,
        arena: &mut ScratchArena,
    ) -> Result<LaplacianSolve, LaplacianError> {
        let mut solution = Vec::new();
        let stats = self.try_solve_into(net, b, epsilon, arena, &mut solution)?;
        Ok(LaplacianSolve {
            solution,
            iterations: stats.iterations,
            rounds: stats.rounds,
        })
    }

    /// The fully in-place solve: writes the solution into `out` (reusing its
    /// capacity) and returns only the statistics. With a warm arena and a
    /// warm `out` buffer a solve performs **zero heap allocations**.
    /// Bit-identical to [`LaplacianSolver::try_solve`].
    ///
    /// # Errors
    ///
    /// As for [`LaplacianSolver::try_solve`].
    pub fn try_solve_into(
        &self,
        net: &mut Network,
        b: &[f64],
        epsilon: f64,
        arena: &mut ScratchArena,
        out: &mut Vec<f64>,
    ) -> Result<LaplacianSolveStats, LaplacianError> {
        if !(epsilon > 0.0 && epsilon <= 0.5) {
            return Err(LaplacianError::InvalidEpsilon { epsilon });
        }
        if b.len() != self.graph.n() {
            return Err(LaplacianError::DimensionMismatch {
                expected: self.graph.n(),
                actual: b.len(),
            });
        }
        Ok(self.solve_unchecked_into(net, b, epsilon, arena, out))
    }

    /// Panicking variant of [`LaplacianSolver::try_solve`], kept for the
    /// pre-`Session` API.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1/2]` or `b` has the wrong length.
    pub fn solve(&self, net: &mut Network, b: &[f64], epsilon: f64) -> LaplacianSolve {
        self.try_solve(net, b, epsilon)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn solve_unchecked_into(
        &self,
        net: &mut Network,
        b: &[f64],
        epsilon: f64,
        arena: &mut ScratchArena,
        out: &mut Vec<f64>,
    ) -> LaplacianSolveStats {
        let rounds_before = net.ledger().total_rounds();
        net.begin_phase("laplacian solve");

        let ScratchArena { scratch, rhs } = arena;
        rhs.clear();
        rhs.extend_from_slice(b);
        vector::remove_mean_in_place(rhs);
        let n = self.graph.n();
        // Bits per broadcast coordinate: O(log(n·U/ε)).
        let resolution = (epsilon / (n.max(2) as f64)).min(0.5);
        let magnitude = (vector::norm_inf(rhs) + 1.0) * (n as f64) * self.max_weight;
        let bits = u64::from(payload::bits_for_real(magnitude, resolution));

        let kappa = self.kappa();
        let iterations = chebyshev::chebyshev_iteration_count(kappa, epsilon);
        // Charge one coordinate broadcast per iteration (the L_G·vector
        // product); the preconditioner solve and vector updates are local.
        for _ in 0..iterations {
            net.share_scalars(bits);
        }

        let graph = &self.graph;
        match &self.factored {
            Some(factored) => chebyshev::preconditioned_chebyshev_fixed_with(
                |x, product| laplacian::laplacian_apply_into(graph, x, product),
                |r, z| factored.solve_into(r, z, true),
                kappa,
                rhs,
                iterations,
                scratch,
            ),
            None => {
                let preconditioner = &self.preconditioner;
                chebyshev::preconditioned_chebyshev_fixed_with(
                    |x, product| laplacian::laplacian_apply_into(graph, x, product),
                    |r, z| {
                        z.copy_from_slice(&preconditioner.solve_psd(r, true).expect(
                            "the scaled sparsifier Laplacian is solvable on mean-zero vectors",
                        ));
                    },
                    kappa,
                    rhs,
                    iterations,
                    scratch,
                )
            }
        };
        out.clear();
        out.extend_from_slice(&scratch.x);
        vector::remove_mean_in_place(out);
        LaplacianSolveStats {
            iterations,
            rounds: net.ledger().total_rounds() - rounds_before,
        }
    }

    /// The `L_G`-norm relative error `‖x⋆ − y‖_{L_G} / ‖x⋆‖_{L_G}` of a
    /// candidate solution `y` against the exact solution `x⋆` (computed
    /// centrally with a dense solve; used by tests and experiments).
    pub fn relative_error(&self, b: &[f64], y: &[f64]) -> f64 {
        let exact = exact_solve(&self.graph, b);
        let diff = vector::sub(&exact, y);
        let num = laplacian::laplacian_norm(&self.graph, &diff);
        let den = laplacian::laplacian_norm(&self.graph, &exact).max(1e-300);
        num / den
    }
}

/// Centralized exact (dense, regularized) solve of `L_G x = b` — the ground
/// truth baseline.
pub fn exact_solve(graph: &Graph, b: &[f64]) -> Vec<f64> {
    let l = DenseMatrix::from_rows(&laplacian::laplacian_dense(graph));
    let b = vector::remove_mean(b);
    l.solve_psd(&b, true)
        .expect("regularized Laplacian solve succeeds")
}

/// Centralized conjugate-gradient baseline (no preconditioner).
pub fn cg_baseline(graph: &Graph, b: &[f64], tolerance: f64) -> bcc_linalg::IterativeSolve {
    let b = vector::remove_mean(b);
    bcc_linalg::conjugate_gradient(
        |x| laplacian::laplacian_apply(graph, x),
        &b,
        None,
        tolerance,
        10 * graph.n().max(10),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::generators;
    use bcc_runtime::ModelConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn bcc_net(n: usize) -> Network {
        Network::clique(ModelConfig::bcc(), n)
    }

    fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let raw: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        vector::remove_mean(&raw)
    }

    #[test]
    fn exact_preconditioner_reaches_requested_accuracy() {
        let g = generators::grid(4, 4);
        let solver = LaplacianSolver::exact_preconditioner(&g);
        let b = random_rhs(g.n(), 1);
        let mut net = bcc_net(g.n());
        for eps in [0.5f64, 1e-2, 1e-6] {
            let solve = solver.solve(&mut net, &b, eps.min(0.5));
            let err = solver.relative_error(&b, &solve.solution);
            assert!(err <= eps * 1.01, "eps {eps}: error {err}");
        }
    }

    #[test]
    fn iteration_count_grows_logarithmically_in_accuracy() {
        let g = generators::grid(3, 5);
        let solver = LaplacianSolver::exact_preconditioner(&g);
        let b = random_rhs(g.n(), 2);
        let mut net = bcc_net(g.n());
        let coarse = solver.solve(&mut net, &b, 0.5);
        let fine = solver.solve(&mut net, &b, 1e-8);
        assert!(fine.iterations > coarse.iterations);
        // O(log(1/eps)): 1e-8 needs ~ 19/0.7 extra iterations over 0.5, i.e.
        // well under 10x.
        assert!(fine.iterations < 12 * coarse.iterations.max(1));
    }

    #[test]
    fn preprocessed_solver_works_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::random_connected(24, 0.4, 4, &mut rng);
        let cfg = SparsifierConfig::laboratory(g.n(), g.m(), 0.5, 17)
            .with_t(8)
            .with_k(2);
        let mut net = bcc_net(g.n());
        let solver = LaplacianSolver::preprocess(&mut net, &g, &cfg);
        assert!(solver.preprocessing_rounds() > 0);
        assert!(solver.sparsifier().is_connected());
        let b = random_rhs(g.n(), 4);
        let solve = solver.solve(&mut net, &b, 1e-4);
        let err = solver.relative_error(&b, &solve.solution);
        assert!(err <= 1e-3, "error {err}");
        assert!(solve.rounds > 0);
    }

    #[test]
    fn solve_rounds_scale_with_log_accuracy_not_n() {
        let g = generators::complete(32);
        let solver = LaplacianSolver::exact_preconditioner(&g);
        let b = random_rhs(g.n(), 5);
        let mut net = bcc_net(g.n());
        let before = net.ledger().total_rounds();
        let _ = solver.solve(&mut net, &b, 1e-4);
        let rounds = net.ledger().total_rounds() - before;
        // Far below n (which a gather-everything approach would need m rounds for).
        assert!(rounds < 600, "rounds = {rounds}");
    }

    #[test]
    fn solution_is_mean_zero_and_matches_cg_baseline() {
        let g = generators::grid(4, 5);
        let solver = LaplacianSolver::exact_preconditioner(&g);
        let b = random_rhs(g.n(), 6);
        let mut net = bcc_net(g.n());
        let solve = solver.solve(&mut net, &b, 1e-8);
        assert!(solve.solution.iter().sum::<f64>().abs() < 1e-8);
        let cg = cg_baseline(&g, &b, 1e-10);
        assert!(cg.converged);
        assert!(vector::approx_eq(
            &solve.solution,
            &vector::remove_mean(&cg.solution),
            1e-4
        ));
    }

    #[test]
    fn exact_solve_satisfies_the_system() {
        let g = generators::cycle(7);
        let b = random_rhs(7, 7);
        let x = exact_solve(&g, &b);
        let lx = laplacian::laplacian_apply(&g, &x);
        assert!(vector::approx_eq(&lx, &b, 1e-7));
    }

    #[test]
    #[should_panic]
    fn disconnected_graph_is_rejected() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        let _ = LaplacianSolver::exact_preconditioner(&g);
    }

    #[test]
    #[should_panic]
    fn epsilon_above_half_is_rejected() {
        let g = generators::cycle(5);
        let solver = LaplacianSolver::exact_preconditioner(&g);
        let mut net = bcc_net(5);
        let _ = solver.solve(&mut net, &[0.0; 5], 0.9);
    }
}
