//! Gremban reduction: solving symmetric diagonally dominant (SDD) systems
//! with the Laplacian solver (used by Lemma 5.1 for the flow LP's
//! `AᵀDA` systems).
//!
//! Given an SDD matrix `M`, split it into its negative off-diagonal part
//! `M_n`, positive off-diagonal part `M_p`, the diagonal `C₁` of absolute
//! off-diagonal row sums and the excess diagonal `C₂ = diag(M) − C₁ ≥ 0`.
//! The `2n × 2n` matrix
//!
//! ```text
//! L = [ C₁ + C₂/2 + M_n      −C₂/2 − M_p    ]
//!     [ −C₂/2 − M_p          C₁ + C₂/2 + M_n ]
//! ```
//!
//! is a genuine graph Laplacian, and an (approximate) solution of
//! `L·[x₁; x₂] = [b; −b]` yields `x = (x₁ − x₂)/2` with `M x ≈ b`.
//! In the Broadcast Congested Clique, physical vertex `i` simulates both
//! virtual vertices `i` and `i + n`, doubling the round count of each step
//! (Section 5 of the paper).

use bcc_graph::Graph;
use bcc_runtime::Network;
use bcc_sparsifier::SparsifierConfig;

use crate::solver::LaplacianSolver;

/// A symmetric diagonally dominant matrix stored as symmetric COO triplets.
#[derive(Debug, Clone, PartialEq)]
pub struct SddMatrix {
    n: usize,
    /// Diagonal entries.
    diagonal: Vec<f64>,
    /// Strict upper-triangle off-diagonal entries `(i, j, value)` with `i < j`.
    off_diagonal: Vec<(usize, usize, f64)>,
}

/// Error returned when a matrix is not symmetric diagonally dominant.
#[derive(Debug, Clone, PartialEq)]
pub struct NotSddError(pub String);

impl std::fmt::Display for NotSddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not symmetric diagonally dominant: {}", self.0)
    }
}

impl std::error::Error for NotSddError {}

impl SddMatrix {
    /// Builds an SDD matrix from full symmetric triplets (both `(i, j)` and
    /// `(j, i)` may be present; they must agree). Diagonal dominance is
    /// validated.
    ///
    /// # Errors
    ///
    /// Returns [`NotSddError`] if the triplets are asymmetric or some row is
    /// not diagonally dominant.
    pub fn from_triplets(
        n: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self, NotSddError> {
        let mut diagonal = vec![0.0; n];
        let mut upper: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        let mut lower: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        for (i, j, v) in triplets {
            if i >= n || j >= n {
                return Err(NotSddError(format!("index ({i}, {j}) out of range")));
            }
            if i == j {
                diagonal[i] += v;
            } else if i < j {
                *upper.entry((i, j)).or_insert(0.0) += v;
            } else {
                *lower.entry((j, i)).or_insert(0.0) += v;
            }
        }
        for (&key, &v) in &lower {
            let u = upper.get(&key).copied().unwrap_or(0.0);
            if (u - v).abs() > 1e-9 * (1.0 + u.abs().max(v.abs())) {
                if upper.contains_key(&key) {
                    return Err(NotSddError(format!(
                        "asymmetric entries at {key:?}: {u} vs {v}"
                    )));
                }
                upper.insert(key, v);
            }
        }
        let off_diagonal: Vec<(usize, usize, f64)> = upper
            .into_iter()
            .filter(|&(_, v)| v != 0.0)
            .map(|((i, j), v)| (i, j, v))
            .collect();
        // Validate dominance.
        let mut off_sum = vec![0.0; n];
        for &(i, j, v) in &off_diagonal {
            off_sum[i] += v.abs();
            off_sum[j] += v.abs();
        }
        for i in 0..n {
            if diagonal[i] + 1e-9 < off_sum[i] {
                return Err(NotSddError(format!(
                    "row {i}: diagonal {} < off-diagonal sum {}",
                    diagonal[i], off_sum[i]
                )));
            }
        }
        Ok(SddMatrix {
            n,
            diagonal,
            off_diagonal,
        })
    }

    /// Dimension of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Applies the matrix to a vector.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y: Vec<f64> = self.diagonal.iter().zip(x).map(|(d, xi)| d * xi).collect();
        for &(i, j, v) in &self.off_diagonal {
            y[i] += v * x[j];
            y[j] += v * x[i];
        }
        y
    }

    /// The excess diagonal `C₂(i,i) = M(i,i) − Σ_{j≠i} |M(i,j)|` (all entries
    /// are non-negative for an SDD matrix).
    pub fn excess_diagonal(&self) -> Vec<f64> {
        let mut excess = self.diagonal.clone();
        for &(i, j, v) in &self.off_diagonal {
            excess[i] -= v.abs();
            excess[j] -= v.abs();
        }
        excess.iter_mut().for_each(|e| *e = e.max(0.0));
        excess
    }

    /// The Gremban graph on `2n` virtual vertices whose Laplacian is `L` from
    /// the module documentation.
    pub fn gremban_graph(&self) -> Graph {
        let n = self.n;
        let mut g = Graph::new(2 * n);
        for &(i, j, v) in &self.off_diagonal {
            if v < 0.0 {
                g.add_edge(i, j, -v);
                g.add_edge(i + n, j + n, -v);
            } else if v > 0.0 {
                g.add_edge(i, j + n, v);
                g.add_edge(j, i + n, v);
            }
        }
        for (i, &d) in self.excess_diagonal().iter().enumerate() {
            if d > 1e-14 {
                g.add_edge(i, i + n, d / 2.0);
            }
        }
        g
    }
}

/// How [`solve_sdd`] realizes the inner Laplacian solve.
#[derive(Debug, Clone)]
pub enum SddSolveMode {
    /// The complete pipeline of Theorem 1.3: run the ad-hoc sparsifier on the
    /// Gremban graph, then preconditioned Chebyshev. Every round is charged.
    Full(SparsifierConfig),
    /// Skip the sparsifier computation and precondition with the (scaled)
    /// Gremban Laplacian itself (`κ = 3`), charging only the per-instance
    /// rounds of Theorem 1.3. This keeps large experiment sweeps tractable
    /// while exercising the identical communication pattern per instance.
    ExactPreconditioner,
}

/// Solves `M x = b` for an SDD matrix `M` via the Gremban reduction and the
/// Broadcast Congested Clique Laplacian solver (Lemma 5.1).
///
/// The virtual `2n`-vertex network is simulated by the `n` physical vertices;
/// the extra factor-of-two rounds are charged explicitly.
///
/// # Panics
///
/// Panics if the Gremban graph is disconnected (for the flow LP matrices of
/// Section 5 the excess diagonal is strictly positive, which makes the graph
/// connected).
pub fn solve_sdd(
    net: &mut Network,
    matrix: &SddMatrix,
    b: &[f64],
    epsilon: f64,
    mode: &SddSolveMode,
) -> Vec<f64> {
    assert_eq!(b.len(), matrix.n(), "dimension mismatch");
    let gremban = matrix.gremban_graph();
    assert!(
        gremban.is_connected(),
        "the Gremban graph must be connected; solve pure Laplacian systems directly instead"
    );
    // The 2n virtual vertices live on a virtual network; physical vertex i
    // simulates virtual vertices i and i + n, so every virtual round costs two
    // physical rounds, charged below.
    let mut virtual_net = Network::clique(net.config(), gremban.n());
    let solver = match mode {
        SddSolveMode::Full(config) => {
            LaplacianSolver::preprocess(&mut virtual_net, &gremban, config)
        }
        SddSolveMode::ExactPreconditioner => LaplacianSolver::exact_preconditioner(&gremban),
    };
    // Right-hand side [b; -b].
    let mut rhs = b.to_vec();
    rhs.extend(b.iter().map(|v| -v));
    let solve = solver.solve(&mut virtual_net, &rhs, epsilon.min(0.5));
    let virtual_rounds = virtual_net.ledger().total_rounds();
    let virtual_bits = virtual_net.ledger().total_bits();
    net.begin_phase("sdd solve (gremban)");
    net.ledger_mut().charge(2 * virtual_rounds, virtual_bits);

    let n = matrix.n();
    (0..n)
        .map(|i| (solve.solution[i] - solve.solution[i + n]) / 2.0)
        .collect()
}

/// Centralized exact SDD solve (dense), used as ground truth in tests.
pub fn exact_sdd_solve(matrix: &SddMatrix, b: &[f64]) -> Vec<f64> {
    let n = matrix.n();
    let mut dense = bcc_linalg::DenseMatrix::zeros(n, n);
    for (i, &d) in matrix.diagonal.iter().enumerate() {
        dense.add_to(i, i, d);
    }
    for &(i, j, v) in &matrix.off_diagonal {
        dense.add_to(i, j, v);
        dense.add_to(j, i, v);
    }
    dense
        .solve(b)
        .or_else(|| dense.solve_psd(b, false))
        .expect("SDD system is solvable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_linalg::vector;
    use bcc_runtime::ModelConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn strictly_dominant(n: usize, seed: u64) -> SddMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut triplets = Vec::new();
        let mut row_sum = vec![0.0; n];
        for i in 0..n {
            for j in (i + 1)..n {
                // Always keep the path i — i+1 so the sparsity graph (and its
                // Gremban double cover) is connected regardless of the seed.
                if j == i + 1 || rng.gen::<f64>() < 0.4 {
                    let sign: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                    let v: f64 = sign * rng.gen_range(0.5..2.0);
                    triplets.push((i, j, v));
                    row_sum[i] += v.abs();
                    row_sum[j] += v.abs();
                }
            }
        }
        for i in 0..n {
            triplets.push((i, i, row_sum[i] + 1.0 + rng.gen::<f64>()));
        }
        SddMatrix::from_triplets(n, triplets).unwrap()
    }

    #[test]
    fn rejects_non_dominant_matrices() {
        let err = SddMatrix::from_triplets(2, [(0, 0, 1.0), (1, 1, 1.0), (0, 1, -5.0)]);
        assert!(err.is_err());
        let err2 =
            SddMatrix::from_triplets(2, [(0, 1, 1.0), (1, 0, 2.0), (0, 0, 3.0), (1, 1, 3.0)]);
        assert!(err2.is_err());
    }

    #[test]
    fn gremban_graph_has_laplacian_structure() {
        let m = strictly_dominant(6, 1);
        let g = m.gremban_graph();
        assert_eq!(g.n(), 12);
        assert!(g.is_connected());
        // Applying the Gremban Laplacian to [x; -x] equals [Mx; -Mx].
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x: Vec<f64> = (0..6).map(|_| rng.gen::<f64>() - 0.5).collect();
        let mut stacked = x.clone();
        stacked.extend(x.iter().map(|v| -v));
        let ly = bcc_graph::laplacian::laplacian_apply(&g, &stacked);
        let mx = m.apply(&x);
        for i in 0..6 {
            assert!((ly[i] - mx[i]).abs() < 1e-9, "row {i}");
            assert!((ly[i + 6] + mx[i]).abs() < 1e-9, "row {}", i + 6);
        }
    }

    #[test]
    fn excess_diagonal_is_nonnegative() {
        let m = strictly_dominant(5, 3);
        assert!(m.excess_diagonal().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn sdd_solve_matches_exact_solution() {
        let m = strictly_dominant(8, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x_true: Vec<f64> = (0..8).map(|_| rng.gen::<f64>() - 0.5).collect();
        let b = m.apply(&x_true);
        let exact = exact_sdd_solve(&m, &b);
        assert!(vector::approx_eq(&exact, &x_true, 1e-8));

        let mut net = Network::clique(ModelConfig::bcc(), 8);
        let approx = solve_sdd(&mut net, &m, &b, 1e-6, &SddSolveMode::ExactPreconditioner);
        assert!(
            vector::approx_eq(&approx, &x_true, 1e-3),
            "{approx:?} vs {x_true:?}"
        );
        assert!(net.ledger().total_rounds() > 0);
    }

    #[test]
    fn sdd_solve_full_pipeline_on_small_instance() {
        let m = strictly_dominant(6, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let x_true: Vec<f64> = (0..6).map(|_| rng.gen::<f64>() - 0.5).collect();
        let b = m.apply(&x_true);
        let gremban = m.gremban_graph();
        let cfg = SparsifierConfig::laboratory(gremban.n(), gremban.m().max(2), 0.5, 9)
            .with_t(6)
            .with_k(2);
        let mut net = Network::clique(ModelConfig::bcc(), 6);
        let approx = solve_sdd(&mut net, &m, &b, 1e-5, &SddSolveMode::Full(cfg));
        assert!(
            vector::approx_eq(&approx, &x_true, 1e-2),
            "{approx:?} vs {x_true:?}"
        );
    }

    #[test]
    fn positive_off_diagonals_are_handled() {
        // M = [[3, 1], [1, 3]] has a positive off-diagonal entry.
        let m = SddMatrix::from_triplets(2, [(0, 0, 3.0), (1, 1, 3.0), (0, 1, 1.0)]).unwrap();
        let b = vec![4.0, 2.0];
        let exact = exact_sdd_solve(&m, &b);
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let approx = solve_sdd(&mut net, &m, &b, 1e-6, &SddSolveMode::ExactPreconditioner);
        assert!(vector::approx_eq(&approx, &exact, 1e-4));
    }
}
