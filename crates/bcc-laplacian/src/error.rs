//! Typed errors of the Laplacian solver.

/// Errors raised by the Laplacian solver on malformed input.
///
/// The panicking entry points ([`crate::LaplacianSolver::preprocess`],
/// [`crate::LaplacianSolver::solve`]) are thin wrappers over the fallible
/// `try_*` variants that surface these values; new code — in particular the
/// `bcc_core::Session` facade — should call the fallible variants.
#[derive(Debug, Clone, PartialEq)]
pub enum LaplacianError {
    /// The input graph is disconnected; the solver's error guarantee is
    /// stated per connected component, so callers must solve per component.
    Disconnected,
    /// The right-hand side has the wrong length for the graph.
    DimensionMismatch {
        /// Expected length (number of vertices).
        expected: usize,
        /// Length actually supplied.
        actual: usize,
    },
    /// The requested accuracy is outside `(0, 1/2]`.
    InvalidEpsilon {
        /// The rejected value.
        epsilon: f64,
    },
    /// The network simulates a different number of processors than the graph
    /// has vertices.
    NetworkSizeMismatch {
        /// Processors in the network.
        network: usize,
        /// Vertices in the graph.
        graph: usize,
    },
}

impl std::fmt::Display for LaplacianError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaplacianError::Disconnected => {
                write!(f, "the Laplacian solver expects a connected graph")
            }
            LaplacianError::DimensionMismatch { expected, actual } => write!(
                f,
                "dimension mismatch: right-hand side has length {actual}, expected {expected}"
            ),
            LaplacianError::InvalidEpsilon { epsilon } => {
                write!(f, "epsilon must lie in (0, 1/2], got {epsilon}")
            }
            LaplacianError::NetworkSizeMismatch { network, graph } => write!(
                f,
                "network simulates {network} processors but the graph has {graph} vertices"
            ),
        }
    }
}

impl std::error::Error for LaplacianError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(LaplacianError::Disconnected
            .to_string()
            .contains("connected"));
        let err = LaplacianError::DimensionMismatch {
            expected: 5,
            actual: 3,
        };
        assert!(err.to_string().contains('5'));
        assert!(err.to_string().contains('3'));
        let err = LaplacianError::InvalidEpsilon { epsilon: 0.9 };
        assert!(err.to_string().contains("0.9"));
        let err = LaplacianError::NetworkSizeMismatch {
            network: 4,
            graph: 6,
        };
        assert!(err.to_string().contains('4'));
        assert!(err.to_string().contains('6'));
    }
}
