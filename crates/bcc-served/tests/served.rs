//! End-to-end tests of the `bcc-served` daemon over a real Unix socket:
//! the determinism contract across the IPC boundary (wire report
//! bit-identical to in-process), tenant enrollment and quota enforcement,
//! protocol robustness against garbage input, and graceful drain.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use bcc_client::wire::{read_frame, send_msg, write_frame, ClientMsg, ServerMsg, WIRE_SCHEMA};
use bcc_client::{ServedClient, WireError, WireRequest};
use bcc_core::config::Priority;
use bcc_core::stream::{StreamEngineBuilder, StreamReport};
use bcc_core::tenant::{TenantConfig, TenantDirectory};
use bcc_core::Request;
use bcc_graph::generators;
use bcc_graph::{DiGraph, FlowInstance};

/// A daemon child that is killed (best-effort) when the test ends, so a
/// failing assertion does not leak a process.
struct DaemonGuard {
    child: Child,
    socket: PathBuf,
}

impl DaemonGuard {
    /// Waits for the daemon to exit on its own (after a clean shutdown).
    fn wait(mut self) {
        let status = self.child.wait().expect("daemon waitable");
        assert!(status.success(), "daemon exited with {status}");
        // Disarm the Drop kill; wait() already reaped the child.
        self.child = Command::new("true").spawn().expect("spawn true");
    }
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bcc-served-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn spawn_daemon(dir: &Path, extra: &[&str]) -> DaemonGuard {
    let socket = dir.join("bcc.sock");
    let _ = std::fs::remove_file(&socket);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_bcc-served"));
    cmd.arg("--socket").arg(&socket);
    for arg in extra {
        cmd.arg(arg);
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    let child = cmd.spawn().expect("spawn bcc-served");
    DaemonGuard { child, socket }
}

/// Connects with retries while the daemon is still binding its socket.
fn connect(guard: &DaemonGuard, tenant: &str) -> Result<ServedClient, WireError> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match ServedClient::connect(&guard.socket, tenant) {
            Err(WireError::Io { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            other => return other,
        }
    }
}

fn raw_connect(guard: &DaemonGuard) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(&guard.socket) {
            Ok(stream) => return stream,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("cannot connect to daemon: {e}"),
        }
    }
}

/// The mixed workload both sides of the bit-identity test submit: a
/// sparsification, two Laplacian solves on the same topology (the second
/// must hit the prepared-solver cache), and a small min-cost max-flow.
fn workload() -> Vec<Request> {
    let grid = generators::grid(3, 3);
    let mut b = vec![0.0; 9];
    b[0] = 1.0;
    b[8] = -1.0;
    let mut b2 = vec![0.0; 9];
    b2[2] = 2.0;
    b2[6] = -2.0;
    let flow = FlowInstance::new(
        DiGraph::from_arcs(4, [(0, 1, 2, 1), (0, 2, 1, 2), (1, 3, 2, 1), (2, 3, 2, 1)]),
        0,
        3,
    );
    vec![
        Request::sparsify(generators::grid(3, 4), 0.9),
        Request::laplacian(grid.clone(), b),
        Request::laplacian(grid, b2),
        Request::min_cost_max_flow(flow),
    ]
}

fn in_process_report(config: bcc_core::EngineConfig, class: Priority) -> StreamReport {
    let mut engine = StreamEngineBuilder::from_config(config)
        .expect("handshake config is valid")
        .build();
    let output = engine.serve(|client| {
        for request in workload() {
            let ticket = client.submit(request, class).expect("admit");
            client.wait(ticket).expect("complete");
        }
    });
    output.report
}

#[test]
fn wire_report_is_bit_identical_to_in_process() {
    let dir = test_dir("identity");
    let guard = spawn_daemon(&dir, &[]);
    let mut client = connect(&guard, "acme").expect("handshake");
    assert_eq!(client.class(), Priority::custom(0));

    for request in workload() {
        let wire = WireRequest::from_request(&request).expect("expressible in v1");
        let ticket = client.submit(wire).expect("admit");
        let outcome = client.wait(ticket).expect("complete");
        assert!(outcome.report.total_rounds > 0);
    }
    let config = client.config().clone();
    let class = client.class();
    let report = client.shutdown().expect("drained report");
    guard.wait();

    assert_eq!(report.requests, 4);
    assert_eq!(report.failures, 0);
    assert_eq!(report.cache_hits, 1, "second Laplacian reuses the solver");

    // The same workload driven in-process with the handshake's config must
    // produce the same report, bit for bit: determinism survives the IPC
    // boundary.
    let local = in_process_report(config, class);
    assert_eq!(report, local);
}

#[test]
fn telemetry_is_observable_over_the_wire() {
    let dir = test_dir("telemetry");
    let guard = spawn_daemon(&dir, &[]);
    let mut client = connect(&guard, "observer").expect("handshake");

    let request = WireRequest::from_request(&Request::sparsify(generators::grid(3, 3), 0.9))
        .expect("expressible");
    let ticket = client.submit(request).expect("admit");
    client.wait(ticket).expect("complete");

    let snapshot = client.telemetry_snapshot().expect("live snapshot");
    assert_eq!(snapshot.schema, "bcc-metrics/v1");
    assert!(snapshot.counter("stream.submitted") >= 1);
    assert!(snapshot.counter("stream.completed") >= 1);
    // Per-tenant counters ride along under the tenant's name prefix.
    assert_eq!(snapshot.counter("tenant.observer.submitted"), 1);
    assert_eq!(snapshot.counter("tenant.observer.completed"), 1);
    assert_eq!(snapshot.counter("tenant.observer.quota_rejections"), 0);

    let trace = client.chrome_trace().expect("trace export");
    assert!(
        trace.contains("traceEvents"),
        "Chrome trace-event envelope expected"
    );

    client.shutdown().expect("drained report");
    guard.wait();
}

#[test]
fn closed_enrollment_rejects_strangers_and_enforces_quotas() {
    let dir = test_dir("tenants");
    let mut directory = TenantDirectory::new();
    directory
        .register(TenantConfig {
            name: "victim".to_string(),
            weight: 4,
            rate_limit: None,
            cache_quota: Some(1),
        })
        .expect("register victim");
    directory
        .register(TenantConfig::new("flooder"))
        .expect("register flooder");
    let tenants_path = dir.join("tenants.json");
    std::fs::write(
        &tenants_path,
        serde_json::to_string_pretty(&directory).expect("serialize directory"),
    )
    .expect("write tenants file");

    let guard = spawn_daemon(&dir, &["--tenants", tenants_path.to_str().unwrap()]);

    // Unknown tenants are refused at handshake.
    let err = connect(&guard, "stranger").expect_err("closed enrollment");
    match err {
        WireError::Remote(fault) => assert_eq!(fault.code, "unknown-tenant"),
        other => panic!("expected a remote fault, got {other:?}"),
    }

    // The victim's quota admits one distinct topology, then rejects.
    let mut victim = connect(&guard, "victim").expect("enrolled tenant");
    assert_eq!(victim.class(), Priority::custom(0));
    let mut b = vec![0.0; 9];
    b[0] = 1.0;
    b[8] = -1.0;
    let first = WireRequest::from_request(&Request::laplacian(generators::grid(3, 3), b.clone()))
        .expect("expressible");
    let ticket = victim.submit(first).expect("within quota");
    victim.wait(ticket).expect("complete");

    // Same topology again: already charged, still admitted.
    let mut b2 = vec![0.0; 9];
    b2[4] = 1.0;
    b2[0] = -1.0;
    let again = WireRequest::from_request(&Request::laplacian(generators::grid(3, 3), b2))
        .expect("expressible");
    let ticket = victim.submit(again).expect("charged topology is free");
    victim.wait(ticket).expect("complete");

    // A second distinct topology exceeds the quota of 1, typed.
    let mut b3 = vec![0.0; 16];
    b3[0] = 1.0;
    b3[15] = -1.0;
    let over = WireRequest::from_request(&Request::laplacian(generators::grid(4, 4), b3))
        .expect("expressible");
    match victim.submit(over) {
        Err(WireError::Remote(fault)) => {
            assert_eq!(fault.code, "quota-exceeded");
            assert!(fault.message.contains("victim"));
        }
        other => panic!("expected quota rejection, got {other:?}"),
    }

    // The rejection is visible in the tenant's own metric prefix: two
    // admitted submissions, one quota refusal.
    let snapshot = victim.telemetry_snapshot().expect("live snapshot");
    assert_eq!(snapshot.counter("tenant.victim.submitted"), 2);
    assert_eq!(snapshot.counter("tenant.victim.completed"), 2);
    assert_eq!(snapshot.counter("tenant.victim.quota_rejections"), 1);

    victim.shutdown().expect("drained report");
    guard.wait();
}

#[test]
fn garbage_input_yields_typed_faults_not_hangs() {
    let dir = test_dir("garbage");
    let guard = spawn_daemon(&dir, &[]);

    // An oversized length prefix: the daemon must answer a typed fault (or
    // close), never allocate or hang.
    {
        let mut stream = raw_connect(&guard);
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
        stream.flush().unwrap();
        let reply = read_frame(&mut stream);
        match reply {
            Ok(Some(payload)) => {
                let msg: ServerMsg = bcc_client::wire::decode_msg(&payload).unwrap();
                match msg {
                    ServerMsg::Fault { fault } => assert_eq!(fault.code, "framing"),
                    other => panic!("expected framing fault, got {other:?}"),
                }
            }
            Ok(None) => {} // connection dropped: acceptable
            Err(e) => panic!("reader errored instead of fault/close: {e}"),
        }
        // And the connection is dropped afterwards.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    }

    // A truncated frame: announce 100 bytes, send 3, hang up.
    {
        let mut stream = raw_connect(&guard);
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&100u32.to_be_bytes()).unwrap();
        stream.write_all(b"abc").unwrap();
        stream.flush().unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut rest = Vec::new();
        // The daemon reports a fault or just closes; it must not hang.
        let _ = stream.read_to_end(&mut rest);
    }

    // Valid framing, invalid JSON.
    {
        let mut stream = raw_connect(&guard);
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write_frame(&mut stream, b"this is not json").unwrap();
        let payload = read_frame(&mut stream).unwrap().expect("fault reply");
        let msg: ServerMsg = bcc_client::wire::decode_msg(&payload).unwrap();
        match msg {
            ServerMsg::Fault { fault } => assert_eq!(fault.code, "malformed"),
            other => panic!("expected malformed fault, got {other:?}"),
        }
    }

    // Valid JSON, unknown message tag.
    {
        let mut stream = raw_connect(&guard);
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write_frame(&mut stream, br#"{"Bogus":{"x":1}}"#).unwrap();
        let payload = read_frame(&mut stream).unwrap().expect("fault reply");
        let msg: ServerMsg = bcc_client::wire::decode_msg(&payload).unwrap();
        match msg {
            ServerMsg::Fault { fault } => assert_eq!(fault.code, "malformed"),
            other => panic!("expected malformed fault, got {other:?}"),
        }
    }

    // A protocol message out of order: Submit before Hello.
    {
        let mut stream = raw_connect(&guard);
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        send_msg(&mut stream, &ClientMsg::Shutdown).unwrap();
        let payload = read_frame(&mut stream).unwrap().expect("fault reply");
        let msg: ServerMsg = bcc_client::wire::decode_msg(&payload).unwrap();
        match msg {
            ServerMsg::Fault { fault } => assert_eq!(fault.code, "protocol"),
            other => panic!("expected protocol fault, got {other:?}"),
        }
    }

    // After all that abuse the daemon still serves real clients.
    let mut client = connect(&guard, "survivor").expect("daemon still alive");
    let request = WireRequest::from_request(&Request::sparsify(generators::grid(3, 3), 0.9))
        .expect("expressible");
    let ticket = client.submit(request).expect("admit");
    client.wait(ticket).expect("complete");
    client.shutdown().expect("drained report");
    guard.wait();
}

#[test]
fn shutdown_drains_in_flight_submissions() {
    let dir = test_dir("drain");
    let guard = spawn_daemon(&dir, &[]);
    let mut client = connect(&guard, "drainer").expect("handshake");

    // Submit a burst and shut down without collecting anything: the drain
    // must execute all of it, and the final report accounts for it.
    let mut submitted = 0;
    for _ in 0..6 {
        let request = WireRequest::from_request(&Request::sparsify(generators::grid(3, 4), 0.9))
            .expect("expressible");
        client.submit(request).expect("admit");
        submitted += 1;
    }
    let report = client.shutdown().expect("drained report");
    guard.wait();

    assert_eq!(report.requests, submitted);
    assert_eq!(report.failures, 0, "drained work runs to completion");
    assert_eq!(report.per_request.len() as u64, submitted);

    // The handshake schema sanity: the report itself is versioned.
    assert_eq!(report.schema, "bcc-stream-report/v1");
    assert_eq!(WIRE_SCHEMA, "bcc-wire/v1");
}

#[test]
fn wait_timeout_keeps_the_ticket_redeemable_over_the_wire() {
    let dir = test_dir("waittimeout");
    let guard = spawn_daemon(&dir, &[]);
    let mut client = connect(&guard, "patient").expect("handshake");

    let request = WireRequest::from_request(&Request::sparsify(generators::grid(4, 4), 0.9))
        .expect("expressible");
    let ticket = client.submit(request).expect("admit");
    // A zero timeout may or may not beat the worker; both outcomes are
    // legal, but a timeout must leave the ticket redeemable.
    match client.wait_timeout(ticket, Duration::from_millis(0)) {
        Ok(outcome) => assert!(outcome.report.total_rounds > 0),
        Err(WireError::Remote(fault)) => {
            assert_eq!(fault.code, "wait-timeout");
            let outcome = client.wait(ticket).expect("still redeemable");
            assert!(outcome.report.total_rounds > 0);
        }
        Err(other) => panic!("unexpected transport error: {other}"),
    }

    // A ticket that was never issued is a typed fault, not a crash.
    match client.wait(999) {
        Err(WireError::Remote(fault)) => assert_eq!(fault.code, "unknown-ticket"),
        other => panic!("expected unknown-ticket, got {other:?}"),
    }

    client.shutdown().expect("drained report");
    guard.wait();
}
