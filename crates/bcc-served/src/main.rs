//! `bcc-served`: the Laplacian-pipeline stream engine promoted to a
//! process. A thin shell over [`bcc_core::stream::StreamEngine`] behind a
//! Unix domain socket speaking `bcc-wire/v1` (see `docs/PROTOCOL.md` and
//! the `bcc-client` crate).
//!
//! ```text
//! bcc-served --socket PATH [--config FILE] [--tenants FILE]
//! ```
//!
//! * `--socket PATH` — where to listen. A stale socket file is replaced.
//! * `--config FILE` — a `bcc-engine-config/v1` JSON document, the same
//!   schema [`StreamEngineBuilder::from_config`] consumes in-process.
//!   Defaults to [`EngineConfig::default`].
//! * `--tenants FILE` — a `bcc-tenants/v1` directory. When given,
//!   enrollment is **closed**: a handshake naming an unknown tenant is
//!   rejected. Without it enrollment is **open**: tenants are
//!   auto-registered (weight 1, no rate limit, no quota) in handshake
//!   order, up to the 256 custom WFQ classes.
//!
//! Every connection authenticates one tenant and is served under that
//! tenant's weighted-fair-queueing class; Laplacian topologies are charged
//! against the tenant's cache quota *before* submission. The daemon is a
//! deterministic shell: it adds no scheduling of its own, so a sequence of
//! submissions through one connection yields a final
//! [`bcc_core::stream::StreamReport`] bit-identical to the same sequence
//! driven in-process with the same config.
//!
//! Shutdown is graceful: on [`ClientMsg::Shutdown`] the daemon stops
//! accepting connections, lets the engine drain everything admitted, then
//! answers the requester with the final [`ServerMsg::Report`] and exits
//! (the report is also printed to stdout).

use std::collections::HashMap;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use bcc_client::wire::{
    decode_msg, read_frame, send_msg, ClientMsg, ServerMsg, WireError, WireFault, WireOutcome,
    WireResponse, WIRE_SCHEMA,
};
use bcc_core::config::{EngineConfig, Priority};
use bcc_core::stream::{StreamClient, StreamEngineBuilder, Ticket};
use bcc_core::telemetry::{TelemetrySink, TenantCounters};
use bcc_core::tenant::{TenantAccounts, TenantConfig, TenantDirectory};
use bcc_core::Request;

/// How often idle waits (accept loop, idle connections) re-check the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

struct Options {
    socket: PathBuf,
    config: Option<PathBuf>,
    tenants: Option<PathBuf>,
}

const USAGE: &str = "usage: bcc-served --socket PATH [--config FILE] [--tenants FILE]";

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut socket = None;
    let mut config = None;
    let mut tenants = None;
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--config" => config = Some(PathBuf::from(value("--config")?)),
            "--tenants" => tenants = Some(PathBuf::from(value("--tenants")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(Options {
        socket: socket.ok_or_else(|| format!("--socket is required\n{USAGE}"))?,
        config,
        tenants,
    })
}

/// State shared by every connection handler.
struct Daemon {
    /// The engine's effective config, echoed in every handshake.
    config: EngineConfig,
    /// Tenant directory; open enrollment appends to it at handshake time.
    directory: Mutex<TenantDirectory>,
    /// Whether unknown tenants are auto-registered.
    open_enrollment: bool,
    /// Per-tenant cache-quota accounting.
    accounts: TenantAccounts,
    /// Retained handle on the engine's telemetry (shared registry/tracer).
    sink: TelemetrySink,
    /// Set by the first `Shutdown` message; checked by every idle loop.
    shutdown: AtomicBool,
    /// The connection that asked for shutdown — it gets the final report.
    finisher: Mutex<Option<UnixStream>>,
}

fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bcc-served: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(options: Options) -> Result<(), String> {
    let mut config = match &options.config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read config {}: {e}", path.display()))?;
            serde_json::from_str::<EngineConfig>(&text)
                .map_err(|e| format!("cannot parse config {}: {e}", path.display()))?
        }
        None => EngineConfig::default(),
    };
    let (directory, open_enrollment) = match &options.tenants {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read tenants {}: {e}", path.display()))?;
            let directory = serde_json::from_str::<TenantDirectory>(&text)
                .map_err(|e| format!("cannot parse tenants {}: {e}", path.display()))?;
            directory
                .validate()
                .map_err(|e| format!("invalid tenant directory {}: {e}", path.display()))?;
            (directory, false)
        }
        None => (TenantDirectory::new(), true),
    };
    // Pre-registered tenants contribute their WFQ weight and rate limit to
    // the engine config before the engine is built.
    directory.apply(&mut config);

    let sink = TelemetrySink::enabled();
    let builder = StreamEngineBuilder::from_config(config.clone())
        .map_err(|e| format!("invalid engine config: {e}"))?;
    let mut engine = builder.telemetry(sink.clone()).build();

    // Replace a stale socket file (a previous daemon that did not exit
    // cleanly); a live listener would win the bind race either way.
    let _ = std::fs::remove_file(&options.socket);
    let listener = UnixListener::bind(&options.socket)
        .map_err(|e| format!("cannot bind {}: {e}", options.socket.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure listener: {e}"))?;
    eprintln!(
        "bcc-served: serving on {} ({} enrollment, seed {})",
        options.socket.display(),
        if open_enrollment { "open" } else { "closed" },
        config.seed,
    );

    let daemon = Daemon {
        config,
        directory: Mutex::new(directory),
        open_enrollment,
        accounts: TenantAccounts::new(),
        sink,
        shutdown: AtomicBool::new(false),
        finisher: Mutex::new(None),
    };

    let output = engine.serve(|client| {
        std::thread::scope(|scope| {
            while !daemon.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let daemon = &daemon;
                        scope.spawn(move || handle_connection(stream, client, daemon));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) => {
                        eprintln!("bcc-served: accept failed: {e}");
                        break;
                    }
                }
            }
            // Scope exit joins every handler; each one notices the
            // shutdown flag at its next frame boundary.
        });
    });
    let _ = std::fs::remove_file(&options.socket);

    // The engine drained everything admitted before serve() returned; now
    // the requester gets the deterministic final report.
    if let Some(mut stream) = daemon.finisher.lock().expect("finisher").take() {
        let _ = send_msg(
            &mut stream,
            &ServerMsg::Report {
                report: output.report.clone(),
            },
        );
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&output.report)
            .map_err(|e| format!("cannot serialize final report: {e}"))?
    );
    Ok(())
}

/// Reads the next client frame, riding out idle timeouts until shutdown.
/// `Ok(None)` means the connection is over (peer hang-up, fatal framing
/// error after a best-effort fault reply, or daemon shutdown).
fn next_msg(
    reader: &mut UnixStream,
    writer: &mut UnixStream,
    daemon: &Daemon,
) -> Option<ClientMsg> {
    loop {
        if daemon.shutdown.load(Ordering::SeqCst) {
            let _ = send_msg(
                writer,
                &ServerMsg::Fault {
                    fault: WireFault::new("shutting-down", "daemon is draining and will exit"),
                },
            );
            return None;
        }
        match read_frame(reader) {
            Ok(Some(payload)) => match decode_msg::<ClientMsg>(&payload) {
                Ok(msg) => return Some(msg),
                Err(e) => {
                    // The frame boundary is intact but the payload is not a
                    // protocol message; reject and drop the connection.
                    let _ = send_msg(
                        writer,
                        &ServerMsg::Fault {
                            fault: WireFault::new("malformed", e.to_string()),
                        },
                    );
                    return None;
                }
            },
            Ok(None) => return None,
            Err(WireError::TimedOut) => continue,
            Err(e) => {
                // Framing is unrecoverable mid-stream: report best-effort
                // and drop.
                let _ = send_msg(
                    writer,
                    &ServerMsg::Fault {
                        fault: WireFault::new("framing", e.to_string()),
                    },
                );
                return None;
            }
        }
    }
}

/// Authenticates the connection's tenant from its `Hello` frame.
fn handshake(
    reader: &mut UnixStream,
    writer: &mut UnixStream,
    daemon: &Daemon,
) -> Option<(TenantConfig, Priority)> {
    let refuse = |writer: &mut UnixStream, code: &str, message: String| {
        let _ = send_msg(
            writer,
            &ServerMsg::Fault {
                fault: WireFault::new(code, message),
            },
        );
        None
    };
    let (schema, tenant) = match next_msg(reader, writer, daemon)? {
        ClientMsg::Hello { schema, tenant } => (schema, tenant),
        other => {
            return refuse(
                writer,
                "protocol",
                format!("expected Hello as the first message, got {other:?}"),
            )
        }
    };
    if schema != WIRE_SCHEMA {
        return refuse(
            writer,
            "unsupported-schema",
            format!("peer speaks `{schema}`, this daemon speaks `{WIRE_SCHEMA}`"),
        );
    }
    let mut directory = daemon.directory.lock().expect("tenant directory");
    let class = match directory.class_of(&tenant) {
        Some(class) => class,
        None if daemon.open_enrollment => {
            match directory.register(TenantConfig::new(tenant.clone())) {
                Ok(class) => class,
                Err(e) => return refuse(writer, "tenant-rejected", e.to_string()),
            }
        }
        None => {
            return refuse(
                writer,
                "unknown-tenant",
                format!("tenant `{tenant}` is not enrolled (closed enrollment)"),
            )
        }
    };
    let tenant_config = directory
        .get(&tenant)
        .expect("registered tenant is in the directory")
        .clone();
    drop(directory);
    let hello = ServerMsg::Hello {
        schema: WIRE_SCHEMA.to_string(),
        tenant,
        class,
        config: daemon.config.clone(),
    };
    match send_msg(writer, &hello) {
        Ok(()) => Some((tenant_config, class)),
        Err(_) => None,
    }
}

fn handle_connection(stream: UnixStream, client: &StreamClient<'_>, daemon: &Daemon) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(mut reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let Some((tenant, class)) = handshake(&mut reader, &mut writer, daemon) else {
        return;
    };
    // Per-tenant metric handles, resolved once per connection: the counters
    // live in the engine's registry under `tenant.<name>.*`, so they ride
    // along in every telemetry snapshot a client exports.
    let counters = daemon
        .sink
        .registry()
        .map(|registry| TenantCounters::register(registry, &tenant.name));
    // Wire tickets are submission indices; the opaque engine tickets live
    // here, so a bogus index from the wire is a typed fault, never a panic.
    let mut tickets: HashMap<u64, Ticket> = HashMap::new();
    while let Some(msg) = next_msg(&mut reader, &mut writer, daemon) {
        let reply = match msg {
            ClientMsg::Hello { .. } => {
                let _ = send_msg(
                    &mut writer,
                    &ServerMsg::Fault {
                        fault: WireFault::new("protocol", "connection is already authenticated"),
                    },
                );
                return;
            }
            ClientMsg::Submit {
                request,
                deadline_ms,
            } => submit(
                client,
                daemon,
                &tenant,
                class,
                counters.as_ref(),
                &mut tickets,
                request,
                deadline_ms,
            ),
            ClientMsg::Poll { ticket } => poll(client, counters.as_ref(), &mut tickets, ticket),
            ClientMsg::Wait { ticket, timeout_ms } => {
                wait(client, counters.as_ref(), &mut tickets, ticket, timeout_ms)
            }
            ClientMsg::TelemetrySnapshot => match client.telemetry_snapshot() {
                Some(snapshot) => ServerMsg::Telemetry { snapshot },
                None => fault_msg("telemetry-disabled", "the engine has no telemetry sink"),
            },
            ClientMsg::ChromeTrace => match daemon.sink.chrome_trace() {
                Some(json) => ServerMsg::Trace { json },
                None => fault_msg("telemetry-disabled", "the engine has no telemetry sink"),
            },
            ClientMsg::Shutdown => {
                // The final report is written after the engine drains; keep
                // a duplicate of the stream so this handler can exit now.
                if let Ok(clone) = writer.try_clone() {
                    *daemon.finisher.lock().expect("finisher") = Some(clone);
                }
                daemon.shutdown.store(true, Ordering::SeqCst);
                return;
            }
        };
        if send_msg(&mut writer, &reply).is_err() {
            return;
        }
    }
}

fn fault_msg(code: &str, message: impl Into<String>) -> ServerMsg {
    ServerMsg::Fault {
        fault: WireFault::new(code, message),
    }
}

#[allow(clippy::too_many_arguments)]
fn submit(
    client: &StreamClient<'_>,
    daemon: &Daemon,
    tenant: &TenantConfig,
    class: Priority,
    counters: Option<&TenantCounters>,
    tickets: &mut HashMap<u64, Ticket>,
    request: bcc_client::wire::WireRequest,
    deadline_ms: Option<u64>,
) -> ServerMsg {
    let request = match request.into_request() {
        Ok(request) => request,
        Err(e) => {
            return ServerMsg::Failed {
                ticket: None,
                fault: WireFault::new("invalid-payload", e.to_string()),
            }
        }
    };
    // Laplacian topologies occupy the shared prepared-solver cache, so they
    // are charged against the tenant's quota before admission.
    if let Request::Laplacian { graph, .. } = &request {
        if let Err(e) = daemon
            .accounts
            .charge(tenant, bcc_graph::fingerprint(graph))
        {
            if let Some(tc) = counters {
                tc.quota_rejections.incr();
            }
            return ServerMsg::Failed {
                ticket: None,
                fault: WireFault::from_engine_error(&e),
            };
        }
    }
    let admitted = match deadline_ms {
        Some(ms) => client.submit_with_deadline(request, class, Duration::from_millis(ms)),
        None => client.submit(request, class),
    };
    match admitted {
        Ok(ticket) => {
            if let Some(tc) = counters {
                tc.submitted.incr();
            }
            let index = ticket.index();
            tickets.insert(index, ticket);
            ServerMsg::Submitted { ticket: index }
        }
        Err(e) => ServerMsg::Failed {
            ticket: None,
            fault: WireFault::from_engine_error(&e),
        },
    }
}

fn poll(
    client: &StreamClient<'_>,
    counters: Option<&TenantCounters>,
    tickets: &mut HashMap<u64, Ticket>,
    index: u64,
) -> ServerMsg {
    let Some(&ticket) = tickets.get(&index) else {
        return unknown_ticket(index);
    };
    match client.poll(ticket) {
        None => ServerMsg::Pending { ticket: index },
        Some(result) => {
            tickets.remove(&index);
            if let Some(tc) = counters {
                tc.completed.incr();
            }
            completed(index, result)
        }
    }
}

fn wait(
    client: &StreamClient<'_>,
    counters: Option<&TenantCounters>,
    tickets: &mut HashMap<u64, Ticket>,
    index: u64,
    timeout_ms: Option<u64>,
) -> ServerMsg {
    let Some(&ticket) = tickets.get(&index) else {
        return unknown_ticket(index);
    };
    let result = match timeout_ms {
        Some(ms) => client.wait_timeout(ticket, Duration::from_millis(ms)),
        None => client.wait(ticket),
    };
    if matches!(result, Err(bcc_core::Error::WaitTimeout { .. })) {
        // The ticket stays redeemable, exactly as in-process.
        return ServerMsg::Failed {
            ticket: Some(index),
            fault: WireFault::from_engine_error(&result.unwrap_err()),
        };
    }
    tickets.remove(&index);
    if let Some(tc) = counters {
        tc.completed.incr();
    }
    completed(index, result)
}

fn unknown_ticket(index: u64) -> ServerMsg {
    ServerMsg::Failed {
        ticket: Some(index),
        fault: WireFault::new(
            "unknown-ticket",
            format!("ticket {index} was never issued on this connection, or already collected"),
        ),
    }
}

fn completed(
    index: u64,
    result: Result<bcc_core::session::Outcome<bcc_core::Response>, bcc_core::Error>,
) -> ServerMsg {
    match result {
        Ok(outcome) => match WireResponse::from_response(&outcome.value) {
            Some(value) => ServerMsg::Done {
                ticket: index,
                outcome: WireOutcome {
                    value,
                    report: outcome.report,
                },
            },
            // Unreachable for requests admitted over the wire (v1 cannot
            // express LP requests), kept typed rather than panicking.
            None => ServerMsg::Failed {
                ticket: Some(index),
                fault: WireFault::new("internal", "response kind not expressible in bcc-wire/v1"),
            },
        },
        Err(e) => ServerMsg::Failed {
            ticket: Some(index),
            fault: WireFault::from_engine_error(&e),
        },
    }
}
