//! Ablation example: Lewis-weight versus uniform-weight path following,
//! served through the `Session` API.
//!
//! Run with `cargo run --example lp_ablation --release`.
//!
//! Theorem 1.4's `Õ(√n)` iteration count hinges on re-weighting the barrier
//! with regularized Lewis weights; with uniform weights the same interior
//! point method needs `Õ(√m)` iterations. This example solves the same
//! min-cost-flow LPs with both weight functions and reports the iteration
//! counts side by side (experiment A2 of EXPERIMENTS.md runs the full sweep).

use bcc_core::prelude::*;
use bcc_flow::{build_flow_lp, FlowLpConfig};
use bcc_lp::WeightStrategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut session = Session::builder().seed(3).build();
    println!(
        "{:<10} {:>6} {:>6} {:>18} {:>18}",
        "instance", "n", "m", "iters (Lewis)", "iters (uniform)"
    );
    for (label, vertices) in [("tiny", 5usize), ("small", 6), ("medium", 7)] {
        let instance =
            bcc_core::graph::generators::random_flow_instance(vertices, 0.25, 3, &mut rng);
        let flow_lp = build_flow_lp(&instance, &FlowLpConfig::default());

        let mut iterations = Vec::new();
        for uniform in [false, true] {
            let mut options = LpOptions::new(1e-2, flow_lp.lp.m(), 3);
            if uniform {
                options = options.with_uniform_weights();
            } else {
                let mut lewis = bcc_core::lp::lewis::LewisOptions::laboratory(flow_lp.lp.m(), 3);
                lewis.iterations = 6;
                lewis.max_sketch_dimension = Some(10);
                options.strategy = WeightStrategy::RegularizedLewis { options: lewis };
                options.path.weight_refresh_sweeps = 1;
            }
            let request =
                LpRequest::new(flow_lp.interior_point.clone(), options).with_sdd_gram(1e-8);
            let solution = session
                .lp(&flow_lp.lp, &request)
                .expect("the flow LP ships a valid interior point");
            iterations.push(solution.value.path_iterations());
        }
        println!(
            "{:<10} {:>6} {:>6} {:>18} {:>18}",
            label,
            flow_lp.lp.n(),
            flow_lp.lp.m(),
            iterations[0],
            iterations[1]
        );
    }
    println!(
        "\nLewis weights track Θ(√n) while uniform weights track Θ(√m): the gap widens with density."
    );
    println!("cumulative session cost:\n{}", session.cumulative_report());
}
