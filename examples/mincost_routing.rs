//! Domain example: minimum cost routing of traffic through a transit network,
//! served through the `Session` API.
//!
//! Run with `cargo run --example mincost_routing --release`.
//!
//! A small transit network (directed arcs with per-link capacity and toll) has
//! to route as much traffic as possible from a gateway to a data center at
//! minimum total toll — exactly the minimum cost maximum flow problem of
//! Theorem 1.1. The example runs the Broadcast Congested Clique algorithm
//! (LP solver + Laplacian solver + rounding) and cross-checks the result
//! against the successive-shortest-path baseline.

use bcc_core::prelude::*;

fn main() {
    // A hand-built transit network: vertex 0 is the gateway, vertex 5 the
    // data center. Arcs are (from, to, capacity, toll).
    let network = DiGraph::from_arcs(
        6,
        [
            (0, 1, 3, 1),
            (0, 2, 2, 2),
            (1, 3, 2, 1),
            (1, 2, 1, 1),
            (2, 4, 3, 1),
            (3, 5, 2, 2),
            (4, 5, 3, 1),
            (3, 4, 1, 1),
        ],
    );
    let instance = FlowInstance::new(network, 0, 5);
    println!(
        "transit network: {} nodes, {} links, max capacity {}, max toll {}",
        instance.graph.n(),
        instance.graph.m(),
        instance.graph.max_capacity(),
        instance.graph.max_cost()
    );

    // Baseline.
    let baseline = ssp_min_cost_max_flow(&instance);
    println!(
        "baseline (successive shortest paths): value = {}, cost = {}",
        baseline.value, baseline.cost
    );

    // Broadcast Congested Clique algorithm (Theorem 1.1).
    let mut session = Session::builder().seed(7).build();
    let outcome = session
        .min_cost_max_flow(&instance)
        .expect("the transit network has links");
    let result = &outcome.value;
    println!(
        "BCC algorithm: value = {}, cost = {}, feasible after rounding = {}",
        result.flow.value, result.flow.cost, result.rounded_feasible
    );
    println!(
        "  path iterations = {}, Laplacian solves = {}, rounds = {}",
        result.path_iterations, result.gram_solves, outcome.report.total_rounds
    );
    println!("per-link flows (BCC / baseline):");
    for (i, arc) in instance.graph.arcs().iter().enumerate() {
        println!(
            "  {} -> {} (cap {}, toll {}): {} / {}",
            arc.from, arc.to, arc.capacity, arc.cost, result.flow.flow[i], baseline.flow[i]
        );
    }
    assert_eq!(result.flow.value, baseline.value, "flow values must agree");
    assert_eq!(result.flow.cost, baseline.cost, "flow costs must agree");
    println!("BCC result matches the exact baseline.");
}
