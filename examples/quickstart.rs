//! Quickstart: the full Figure-1 pipeline on a small random graph, served
//! through the `Session` API.
//!
//! Run with `cargo run --example quickstart --release`.
//!
//! The example (1) computes a spectral sparsifier of a random weighted graph
//! in the Broadcast CONGEST model, (2) solves a batch of Laplacian systems on
//! it in the Broadcast Congested Clique — preprocessing once and amortizing
//! it over every right-hand side — and (3) computes an exact minimum cost
//! maximum flow on a random capacitated digraph. Every request returns a
//! structured `RoundReport`; the session accumulates the cost of all of them.

use bcc_core::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = 42;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut session = Session::builder().seed(seed).build();

    // ----------------------------------------------------------------- (1)
    let graph = bcc_core::graph::generators::random_connected(48, 0.3, 8, &mut rng);
    println!(
        "input graph: n = {}, m = {}, total weight = {}",
        graph.n(),
        graph.m(),
        graph.total_weight()
    );
    let sparsify = session
        .sparsify(&graph, 0.5)
        .expect("the input graph is connected and non-empty");
    let eps = bcc_core::sparsifier::quality::achieved_epsilon(&graph, &sparsify.value.sparsifier);
    println!(
        "sparsifier: {} of {} edges, achieved epsilon = {:.3}, rounds = {}",
        sparsify.value.sparsifier.m(),
        graph.m(),
        eps,
        sparsify.report.total_rounds
    );

    // ----------------------------------------------------------------- (2)
    // Preprocess once, then serve several demand vectors on the same grid —
    // the repeated-traffic pattern Theorem 1.3's preprocessing/solve split is
    // built for.
    let mut prepared = session
        .laplacian(&graph)
        .epsilon(1e-8)
        .preprocess()
        .expect("the input graph is connected");
    let demands: Vec<Vec<f64>> = (1..4)
        .map(|k| {
            let mut b = vec![0.0; graph.n()];
            b[0] = 1.0;
            b[graph.n() - k] = -1.0;
            b
        })
        .collect();
    let batch = prepared.solve_many(&demands).expect("dimensions match");
    let residual = bcc_core::linalg::vector::sub(
        &bcc_core::graph::laplacian::laplacian_apply(&graph, &batch.value[0].solution),
        &demands[0],
    );
    println!(
        "laplacian batch: {} solves after one preprocessing ({} preprocessing rounds, {} solve rounds), residual |L x - b|_inf = {:.2e}",
        batch.value.len(),
        prepared.preprocessing_report().total_rounds,
        batch.report.total_rounds,
        bcc_core::linalg::vector::norm_inf(&residual),
    );
    prepared.finish(&mut session);

    // ----------------------------------------------------------------- (3)
    let instance = bcc_core::graph::generators::random_flow_instance(6, 0.3, 4, &mut rng);
    let baseline = ssp_min_cost_max_flow(&instance);
    let flow = session
        .min_cost_max_flow(&instance)
        .expect("the instance has arcs");
    println!(
        "min-cost max-flow: value = {} (baseline {}), cost = {} (baseline {}), rounds = {}",
        flow.value.flow.value,
        baseline.value,
        flow.value.flow.cost,
        baseline.cost,
        flow.report.total_rounds
    );
    println!("round breakdown of the flow computation:\n{}", flow.report);
    println!("cumulative session cost:\n{}", session.cumulative_report());
}
