//! Quickstart: the full Figure-1 pipeline on a small random graph.
//!
//! Run with `cargo run --example quickstart --release`.
//!
//! The example (1) computes a spectral sparsifier of a random weighted graph
//! in the Broadcast CONGEST model, (2) solves a Laplacian system on it in the
//! Broadcast Congested Clique, and (3) computes an exact minimum cost maximum
//! flow on a random capacitated digraph — reporting the number of rounds each
//! stage charged, which is the quantity the paper's theorems bound.

use bcc_core::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let seed = 42;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // ----------------------------------------------------------------- (1)
    let graph = bcc_core::graph::generators::random_connected(48, 0.3, 8, &mut rng);
    println!(
        "input graph: n = {}, m = {}, total weight = {}",
        graph.n(),
        graph.m(),
        graph.total_weight()
    );
    let (sparsifier, report) = bcc_core::spectral_sparsify(&graph, 0.5, seed);
    let eps = bcc_core::sparsifier::quality::achieved_epsilon(&graph, &sparsifier);
    println!(
        "sparsifier: {} of {} edges, achieved epsilon = {:.3}, rounds = {}",
        sparsifier.m(),
        graph.m(),
        eps,
        report.total_rounds
    );

    // ----------------------------------------------------------------- (2)
    let mut demand = vec![0.0; graph.n()];
    demand[0] = 1.0;
    demand[graph.n() - 1] = -1.0;
    let (potentials, report) = bcc_core::solve_laplacian_bcc(&graph, &demand, 1e-8, seed);
    let residual = bcc_core::linalg::vector::sub(
        &bcc_core::graph::laplacian::laplacian_apply(&graph, &potentials),
        &demand,
    );
    println!(
        "laplacian solve: residual |L x - b|_inf = {:.2e}, rounds = {}",
        bcc_core::linalg::vector::norm_inf(&residual),
        report.total_rounds
    );

    // ----------------------------------------------------------------- (3)
    let instance = bcc_core::graph::generators::random_flow_instance(6, 0.3, 4, &mut rng);
    let baseline = ssp_min_cost_max_flow(&instance);
    let (result, report) = bcc_core::min_cost_max_flow_bcc(&instance, seed);
    println!(
        "min-cost max-flow: value = {} (baseline {}), cost = {} (baseline {}), rounds = {}",
        result.flow.value, baseline.value, result.flow.cost, baseline.cost, report.total_rounds
    );
    println!("round breakdown of the flow computation:\n{}", report.breakdown);
}
