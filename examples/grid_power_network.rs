//! Domain example: electrical potentials on a grid "power network", served
//! through the `Session` API.
//!
//! Run with `cargo run --example grid_power_network --release`.
//!
//! A `rows × cols` grid of substations with heterogeneous line conductances is
//! a classic Laplacian-paradigm workload: injecting one unit of current at a
//! corner and extracting it at the opposite corner, the vertex potentials are
//! the solution of `L x = b`. Power studies solve *many* injection patterns on
//! one fixed grid (cf. repeated optimal-power-flow solves), which is exactly
//! the preprocess-once / solve-many split of Theorem 1.3: the example runs a
//! batch of three injection scenarios against a single preprocessing pass and
//! cross-checks the first against the centralized conjugate-gradient baseline.

use bcc_core::prelude::*;
use bcc_core::{graph::laplacian, linalg::vector};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let rows = 6;
    let cols = 6;
    let seed = 7;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Grid with random conductances in [1, 10].
    let base = bcc_core::graph::generators::grid(rows, cols);
    let graph = base.map_weights(|_| 1.0 + 9.0 * rng.gen::<f64>());
    let n = graph.n();
    println!("power grid: {rows} x {cols}, {} lines", graph.m());

    // Three injection scenarios: corner-to-corner, corner-to-center, and
    // edge-to-edge.
    let mut scenarios: Vec<Vec<f64>> = Vec::new();
    for (source, sink) in [(0, n - 1), (0, n / 2), (cols - 1, n - cols)] {
        let mut current = vec![0.0; n];
        current[source] = 1.0;
        current[sink] = -1.0;
        scenarios.push(current);
    }

    // Broadcast Congested Clique solve (Theorem 1.3): preprocess once, then
    // serve every scenario off the same sparsifier.
    let session = Session::builder().seed(seed).build();
    let mut prepared = session
        .laplacian(&graph)
        .epsilon(1e-8)
        .preprocess()
        .expect("the grid is connected");
    let batch = prepared
        .solve_many(&scenarios)
        .expect("every scenario has one entry per substation");
    let preprocessing_rounds = prepared.preprocessing_report().total_rounds;
    let solve_rounds = batch
        .report
        .phase("laplacian solve")
        .map_or(0, |s| s.rounds);
    println!(
        "BCC solver: sparsifier {} of {} lines (epsilon {:.3}), {} preprocessing rounds charged once, {} solve rounds across {} scenarios",
        prepared.solver().sparsifier().m(),
        graph.m(),
        prepared.solver().sparsifier_epsilon(),
        preprocessing_rounds,
        solve_rounds,
        batch.value.len(),
    );

    // Centralized CG baseline for the first scenario.
    let cg = bcc_core::laplacian::cg_baseline(&graph, &scenarios[0], 1e-10);
    println!(
        "CG baseline: {} iterations, residual {:.2e}",
        cg.iterations, cg.residual_norm
    );

    // Agreement and the effective corner-to-corner resistance x_s - x_t.
    let solution = &batch.value[0].solution;
    let difference = vector::sub(solution, &vector::remove_mean(&cg.solution));
    println!(
        "max disagreement between the two solvers: {:.2e}",
        vector::norm_inf(&difference)
    );
    let resistance = solution[0] - solution[n - 1];
    println!("effective resistance corner-to-corner: {resistance:.4}");

    // Sanity: the residual of every BCC solution.
    for (scenario, solve) in scenarios.iter().zip(&batch.value) {
        let residual = vector::sub(
            &laplacian::laplacian_apply(&graph, &solve.solution),
            scenario,
        );
        println!("|L x - b|_inf = {:.2e}", vector::norm_inf(&residual));
    }
}
