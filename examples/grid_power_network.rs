//! Domain example: electrical potentials on a grid "power network".
//!
//! Run with `cargo run --example grid_power_network --release`.
//!
//! A `rows × cols` grid of substations with heterogeneous line conductances is
//! a classic Laplacian-paradigm workload: injecting one unit of current at a
//! corner and extracting it at the opposite corner, the vertex potentials are
//! the solution of `L x = b`. The example compares the Broadcast Congested
//! Clique solver of Theorem 1.3 (sparsifier preprocessing + preconditioned
//! Chebyshev) against the centralized conjugate-gradient baseline, and prints
//! the effective resistance between the two corners.

use bcc_core::prelude::*;
use bcc_core::{graph::laplacian, linalg::vector};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let rows = 6;
    let cols = 6;
    let seed = 7;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Grid with random conductances in [1, 10].
    let base = bcc_core::graph::generators::grid(rows, cols);
    let graph = base.map_weights(|_| 1.0 + 9.0 * rng.gen::<f64>());
    let n = graph.n();
    println!("power grid: {rows} x {cols}, {} lines", graph.m());

    // Current injection: +1 at the top-left corner, -1 at the bottom-right.
    let mut current = vec![0.0; n];
    current[0] = 1.0;
    current[n - 1] = -1.0;

    // Broadcast Congested Clique solve (Theorem 1.3).
    let cfg = SparsifierConfig::laboratory(n, graph.m(), 0.5, seed).with_t(6).with_k(2);
    let mut net = Network::clique(ModelConfig::bcc(), n);
    let solver = LaplacianSolver::preprocess(&mut net, &graph, &cfg);
    let solve = solver.solve(&mut net, &current, 1e-8);
    println!(
        "BCC solver: sparsifier {} of {} edges (epsilon {:.3}), preprocessing rounds = {}, solve rounds = {}",
        solver.sparsifier().m(),
        graph.m(),
        solver.sparsifier_epsilon(),
        solver.preprocessing_rounds(),
        solve.rounds
    );

    // Centralized CG baseline.
    let cg = bcc_core::laplacian::cg_baseline(&graph, &current, 1e-10);
    println!(
        "CG baseline: {} iterations, residual {:.2e}",
        cg.iterations, cg.residual_norm
    );

    // Agreement and the effective corner-to-corner resistance x_s - x_t.
    let difference = vector::sub(&solve.solution, &vector::remove_mean(&cg.solution));
    println!(
        "max disagreement between the two solvers: {:.2e}",
        vector::norm_inf(&difference)
    );
    let resistance = solve.solution[0] - solve.solution[n - 1];
    println!("effective resistance corner-to-corner: {resistance:.4}");

    // Sanity: the residual of the BCC solution.
    let residual = vector::sub(&laplacian::laplacian_apply(&graph, &solve.solution), &current);
    println!("|L x - b|_inf = {:.2e}", vector::norm_inf(&residual));
}
