//! Batch serving: many Laplacian solves on a few shared power-grid
//! topologies, plus sparsifier and flow traffic, served concurrently by the
//! `bcc_core::batch::BatchEngine`.
//!
//! The engine fingerprints every Laplacian request's graph and shares one
//! preprocessed solver per distinct topology across the whole batch — the
//! amortization Theorem 1.3 promises, now across *requests* instead of
//! right-hand sides. Run with `cargo run --release --example batch_serving`.

use bcc_core::batch::{BatchEngine, Request};
use bcc_core::graph::generators;

fn main() {
    // Three substations report load patterns against two grid topologies.
    let small_grid = generators::grid(5, 5);
    let large_grid = generators::grid(6, 6);

    let mut requests = Vec::new();
    for k in 1..=6 {
        let (grid, label) = if k % 2 == 0 {
            (&small_grid, "5x5")
        } else {
            (&large_grid, "6x6")
        };
        let n = grid.n();
        let mut demand = vec![0.0; n];
        demand[k % n] = 1.0;
        demand[n - 1 - k % n] = -1.0;
        println!("request {k}: unit demand pair on the {label} grid");
        requests.push(Request::laplacian(grid.clone(), demand));
    }
    requests.push(Request::sparsify(generators::complete(16), 0.5));

    let mut engine = BatchEngine::builder().seed(2022).build();
    let output = engine.run(&requests);

    println!(
        "\nserved {} requests ({} failed) on {} workers",
        output.report.requests,
        output.report.failures,
        engine.workers()
    );
    println!(
        "laplacian cache: {} distinct topologies, {} hits / {} misses",
        output.report.preprocessing.len(),
        output.report.cache_hits,
        output.report.cache_misses
    );
    for entry in &output.report.preprocessing {
        println!(
            "  fingerprint {}… served {} requests, preprocessing {} rounds",
            &entry.fingerprint[..8],
            entry.requests,
            entry.report.total_rounds
        );
    }
    println!(
        "batch total: {} rounds / {} bits (preprocessing charged once per topology)",
        output.report.total.total_rounds, output.report.total.total_bits
    );

    // A second identical batch is served entirely from the warm cache.
    let warm = engine.run(&requests);
    println!(
        "warm rerun: {} rounds ({} cache hits, 0 misses: {})",
        warm.report.total.total_rounds,
        warm.report.cache_hits,
        warm.report.cache_misses == 0
    );
}
