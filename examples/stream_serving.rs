//! Streaming serving with weighted fair queueing: requests trickle in one
//! at a time across three scheduling classes and are collected as they
//! finish, while the engine's bounded, cost-aware Laplacian cache amortizes
//! preprocessing across submissions.
//!
//! Interactive telemetry queries (load-flow solves against two shared grid
//! topologies) compete with bulk maintenance work (sparsifier rebuilds) and
//! a rate-limited custom "analytics" class. The WFQ scheduler apportions
//! dispatches by class weight — bulk work keeps flowing even under
//! interactive load, unlike the old strict two-class priority queue — a
//! token bucket caps the analytics share per scheduling window, and a
//! zero-deadline probe shows queued work expiring with the typed
//! `DeadlineExceeded` error instead of running late. Results stay
//! bit-identical to a sequential `Session` loop whatever the worker count,
//! weights or limits. Run with
//! `cargo run --release --example stream_serving`.

use std::time::Duration;

use bcc_core::batch::Request;
use bcc_core::graph::generators;
use bcc_core::stream::{Priority, RateLimit, StreamEngine};
use bcc_core::EvictionPolicy;

fn main() {
    let small_grid = generators::grid(5, 5);
    let large_grid = generators::grid(6, 6);
    let analytics = Priority::custom(0);

    let mut engine = StreamEngine::builder()
        .seed(2022)
        .queue_capacity(8)
        .cache_capacity(4)
        .eviction_policy(EvictionPolicy::CostAware)
        .class_weight(Priority::Interactive, 4)
        .class_weight(Priority::Bulk, 2)
        .class_weight(analytics, 1)
        .class_rate_limit(analytics, RateLimit::new(1, 4))
        .build();
    println!(
        "stream engine: {} workers, queue capacity {}, cache capacity {:?} ({} eviction)",
        engine.workers(),
        engine.queue_capacity(),
        engine.cache_capacity(),
        engine.eviction_policy(),
    );
    println!(
        "classes: interactive weight {}, bulk weight {}, analytics weight {} at {:?}\n",
        engine.class_weight(Priority::Interactive),
        engine.class_weight(Priority::Bulk),
        engine.class_weight(analytics),
        engine.class_rate_limit(analytics).unwrap(),
    );

    let output = engine.serve(|client| {
        let mut tickets = Vec::new();

        // Bulk maintenance traffic first...
        tickets.push(
            client
                .submit(
                    Request::sparsify(generators::complete(16), 0.5),
                    Priority::Bulk,
                )
                .expect("admitted"),
        );

        // ...an analytics sweep that the token bucket paces...
        tickets.push(
            client
                .submit(Request::sparsify(generators::complete(12), 1.0), analytics)
                .expect("admitted"),
        );

        // ...and a probe whose deadline has already passed: it will expire
        // in the queue with a typed error instead of running late.
        let mut demand = vec![0.0; small_grid.n()];
        demand[0] = 1.0;
        demand[small_grid.n() - 1] = -1.0;
        let doomed = client
            .submit_with_deadline(
                Request::laplacian(small_grid.clone(), demand),
                Priority::Interactive,
                Duration::ZERO,
            )
            .expect("admitted");
        tickets.push(doomed);
        println!(
            "submitted a zero-deadline probe (ticket {})",
            doomed.index()
        );

        // Interactive load-flow queries trickling in one at a time.
        for k in 1..=6 {
            let (grid, label) = if k % 2 == 0 {
                (&small_grid, "5x5")
            } else {
                (&large_grid, "6x6")
            };
            let n = grid.n();
            let mut demand = vec![0.0; n];
            demand[k % n] = 1.0;
            demand[n - 1 - k % n] = -1.0;
            let ticket = client
                .submit(
                    Request::laplacian(grid.clone(), demand),
                    Priority::Interactive,
                )
                .expect("admitted");
            println!(
                "submitted query #{} (ticket {}, {} grid, interactive)",
                k,
                ticket.index(),
                label
            );
            tickets.push(ticket);

            // Collect whatever already finished without blocking.
            tickets.retain(|t| match client.poll(*t) {
                Some(Ok(outcome)) => {
                    println!(
                        "  ticket {} done: {} rounds",
                        t.index(),
                        outcome.report.total_rounds
                    );
                    false
                }
                Some(Err(e)) => {
                    println!("  ticket {} failed: {e}", t.index());
                    false
                }
                None => true,
            });
        }

        // Block for the stragglers.
        for ticket in tickets {
            match client.wait(ticket) {
                Ok(outcome) => println!(
                    "  ticket {} done: {} rounds",
                    ticket.index(),
                    outcome.report.total_rounds
                ),
                Err(e) => println!("  ticket {} failed: {e}", ticket.index()),
            }
        }
    });

    let report = &output.report;
    println!(
        "\nserved {} requests ({} interactive / {} bulk, {} failed, {} rejected, {} expired)",
        report.requests,
        report.interactive,
        report.bulk,
        report.failures,
        report.rejected,
        report.expired,
    );
    println!("scheduler ({}):", report.scheduler.policy);
    for class in &report.scheduler.classes {
        println!(
            "  {:<12} weight {} limit {:<14} submitted {} dispatched {} expired {} throttled {}",
            class.class,
            class.weight,
            class
                .rate_limit
                .map(|r| format!("{}/{}", r.tokens, r.window))
                .unwrap_or_else(|| "none".to_string()),
            class.submitted,
            class.dispatched,
            class.expired,
            class.throttled,
        );
    }
    println!(
        "laplacian cache ({}): {} distinct topologies, {} hits / {} misses (engine lifetime: {} hits, {} misses, {} evictions, {} entries)",
        report.cache.policy,
        report.preprocessing.len(),
        report.cache_hits,
        report.cache_misses,
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.entries,
    );
    for entry in &report.preprocessing {
        println!(
            "  fingerprint {}… served {} requests, preprocessing {} rounds",
            &entry.fingerprint[..8],
            entry.requests,
            entry.report.total_rounds
        );
    }
    println!(
        "stream total: {} rounds / {} bits (preprocessing charged once per topology)",
        report.total.total_rounds, report.total.total_bits
    );
    // Worker-pool sizing counters: timing-dependent (resize decisions race
    // completions), so they ride on the output instead of the deterministic
    // report. A fixed pool shows 0 grows / 0 shrinks with peak == min.
    println!(
        "worker pool: {}..{} workers, {} grows / {} shrinks, peak {}",
        output.pool.min_workers,
        output.pool.max_workers,
        output.pool.grows,
        output.pool.shrinks,
        output.pool.peak_workers,
    );

    // A second scope on the same engine is served from the warm cache.
    let warm = engine.serve(|client| {
        let n = small_grid.n();
        let mut demand = vec![0.0; n];
        demand[0] = 1.0;
        demand[n - 1] = -1.0;
        let ticket = client
            .submit(
                Request::laplacian(small_grid.clone(), demand),
                Priority::Interactive,
            )
            .expect("admitted");
        client.wait(ticket).expect("well-formed query").report
    });
    println!(
        "warm rerun: {} rounds for one query ({} cache hit: {})",
        warm.value.total_rounds,
        warm.report.cache_hits,
        warm.report.cache_misses == 0
    );

    // The unified cost model priced every scheduling decision above
    // (size-aware WFQ tags are on by default); its predicted-vs-actual
    // per-class sums come back in the scheduler stats.
    println!("cost model estimation error (first scope):");
    for class in &report.scheduler.classes {
        if class.actual_rounds == 0 {
            continue;
        }
        let error = class
            .estimation_error()
            .map(|e| format!("{:.1}%", e * 100.0))
            .unwrap_or_else(|| "n/a".to_string());
        println!(
            "  {:<12} predicted {:>8} rounds, actual {:>8} rounds (error {})",
            class.class, class.predicted_rounds, class.actual_rounds, error
        );
    }
    println!(
        "  cache rebuilds predicted {} rounds (uncalibrated prior), actual {}",
        report.cache.rebuild_predicted_rounds, report.cache.rebuild_actual_rounds
    );

    // The engine also surfaces wall-clock latency percentiles per class:
    // queue wait (submission to dispatch) and end-to-end (submission to
    // completion). Under the default SystemClock these are real timings and
    // vary run to run; a VirtualClock makes them deterministic.
    println!("latency percentiles (first scope, wall clock):");
    for class in &output.latency.classes {
        println!(
            "  {:<12} wait p50/p95/p99 {:>9.3?}/{:>9.3?}/{:>9.3?}  e2e p50/p95/p99 {:>9.3?}/{:>9.3?}/{:>9.3?} ({} samples)",
            class.class,
            class.queue_wait.p50(),
            class.queue_wait.p95(),
            class.queue_wait.p99(),
            class.end_to_end.p50(),
            class.end_to_end.p95(),
            class.end_to_end.p99(),
            class.end_to_end.samples,
        );
    }
}
