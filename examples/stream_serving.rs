//! Streaming serving: requests trickle in one at a time with mixed
//! priorities and are collected as they finish, while the engine's bounded
//! Laplacian cache amortizes preprocessing across submissions.
//!
//! Interactive telemetry queries (load-flow solves against two shared grid
//! topologies) arrive interleaved with bulk maintenance work (sparsifier
//! rebuilds, a routing flow). The `StreamEngine` schedules all interactive
//! work ahead of bulk work, applies backpressure through its bounded
//! admission queue, and drains everything on shutdown — and its results are
//! bit-identical to a sequential `Session` loop, whatever the worker count.
//! Run with `cargo run --release --example stream_serving`.

use bcc_core::batch::Request;
use bcc_core::graph::generators;
use bcc_core::stream::{Priority, StreamEngine};

fn main() {
    let small_grid = generators::grid(5, 5);
    let large_grid = generators::grid(6, 6);

    let mut engine = StreamEngine::builder()
        .seed(2022)
        .queue_capacity(8)
        .cache_capacity(4)
        .build();
    println!(
        "stream engine: {} workers, queue capacity {}, cache capacity {:?}\n",
        engine.workers(),
        engine.queue_capacity(),
        engine.cache_capacity()
    );

    let output = engine.serve(|client| {
        let mut tickets = Vec::new();

        // Bulk maintenance traffic first...
        tickets.push(
            client
                .submit(
                    Request::sparsify(generators::complete(16), 0.5),
                    Priority::Bulk,
                )
                .expect("admitted"),
        );

        // ...then interactive load-flow queries trickling in one at a time.
        for k in 1..=6 {
            let (grid, label) = if k % 2 == 0 {
                (&small_grid, "5x5")
            } else {
                (&large_grid, "6x6")
            };
            let n = grid.n();
            let mut demand = vec![0.0; n];
            demand[k % n] = 1.0;
            demand[n - 1 - k % n] = -1.0;
            let ticket = client
                .submit(
                    Request::laplacian(grid.clone(), demand),
                    Priority::Interactive,
                )
                .expect("admitted");
            println!(
                "submitted query #{} (ticket {}, {} grid, interactive)",
                k,
                ticket.index(),
                label
            );
            tickets.push(ticket);

            // Collect whatever already finished without blocking.
            tickets.retain(|t| match client.poll(*t) {
                Some(Ok(outcome)) => {
                    println!(
                        "  ticket {} done: {} rounds",
                        t.index(),
                        outcome.report.total_rounds
                    );
                    false
                }
                Some(Err(e)) => {
                    println!("  ticket {} failed: {e}", t.index());
                    false
                }
                None => true,
            });
        }

        // Block for the stragglers.
        for ticket in tickets {
            match client.wait(ticket) {
                Ok(outcome) => println!(
                    "  ticket {} done: {} rounds",
                    ticket.index(),
                    outcome.report.total_rounds
                ),
                Err(e) => println!("  ticket {} failed: {e}", ticket.index()),
            }
        }
    });

    let report = &output.report;
    println!(
        "\nserved {} requests ({} interactive / {} bulk, {} failed, {} rejected)",
        report.requests, report.interactive, report.bulk, report.failures, report.rejected
    );
    println!(
        "laplacian cache: {} distinct topologies, {} hits / {} misses (engine lifetime: {} hits, {} misses, {} evictions, {} entries)",
        report.preprocessing.len(),
        report.cache_hits,
        report.cache_misses,
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.entries,
    );
    for entry in &report.preprocessing {
        println!(
            "  fingerprint {}… served {} requests, preprocessing {} rounds",
            &entry.fingerprint[..8],
            entry.requests,
            entry.report.total_rounds
        );
    }
    println!(
        "stream total: {} rounds / {} bits (preprocessing charged once per topology)",
        report.total.total_rounds, report.total.total_bits
    );

    // A second scope on the same engine is served from the warm cache.
    let warm = engine.serve(|client| {
        let n = small_grid.n();
        let mut demand = vec![0.0; n];
        demand[0] = 1.0;
        demand[n - 1] = -1.0;
        let ticket = client
            .submit(
                Request::laplacian(small_grid.clone(), demand),
                Priority::Interactive,
            )
            .expect("admitted");
        client.wait(ticket).expect("well-formed query").report
    });
    println!(
        "warm rerun: {} rounds for one query ({} cache hit: {})",
        warm.value.total_rounds,
        warm.report.cache_hits,
        warm.report.cache_misses == 0
    );
}
