//! Integration tests of the `bcc_core::stream` serving engine: bit-identity
//! with a sequential `Session` loop across all four pipelines (for any
//! worker count, priority mix and submission/collection interleaving),
//! backpressure and rejection paths, drain-on-shutdown, bounded-cache
//! eviction correctness, and a golden snapshot of the `StreamReport` JSON
//! schema that `BENCH_stream.json` consumers rely on.

use std::collections::HashMap;

use bcc_core::batch::{BatchEngine, PreprocessingCost, RequestCost};
use bcc_core::prelude::*;
use bcc_core::stream::{StreamEngine, StreamReport, Ticket};
use bcc_core::{graph::generators, CacheStats, Error, Request, Response};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const MASTER_SEED: u64 = 2022;

/// A mixed workload touching all four pipelines, with repeated Laplacian
/// topologies so the cache has something to amortize. Priorities alternate
/// to exercise both queues.
fn mixed_workload() -> Vec<(Request, Priority)> {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let grid = generators::grid(4, 4);
    let mut b1 = vec![0.0; grid.n()];
    b1[0] = 1.0;
    b1[15] = -1.0;
    let mut b2 = vec![0.0; grid.n()];
    b2[3] = 1.0;
    b2[12] = -1.0;
    let other = generators::random_connected(12, 0.4, 4, &mut rng);
    let mut b3 = vec![0.0; other.n()];
    b3[0] = 2.0;
    b3[11] = -2.0;

    let lp = LpInstance {
        a: bcc_core::linalg::CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
        b: vec![1.0],
        c: vec![0.0, 1.0],
        lower: vec![0.0, 0.0],
        upper: vec![1.0, 1.0],
    };
    let lp_request = LpRequest::new(
        vec![0.5, 0.5],
        LpOptions::new(1e-3, lp.m(), 7).with_uniform_weights(),
    );

    let flow = generators::random_flow_instance(5, 0.3, 3, &mut rng);

    vec![
        (
            Request::sparsify(generators::complete(14), 0.5),
            Priority::Interactive,
        ),
        (Request::laplacian(grid.clone(), b1), Priority::Bulk),
        (Request::laplacian(grid, b2), Priority::Bulk), // same topology: cache hit
        (Request::laplacian(other, b3), Priority::Interactive),
        (Request::lp(lp, lp_request), Priority::Interactive),
        (Request::min_cost_max_flow(flow), Priority::Bulk),
    ]
}

/// The documented sequential equivalent of a stream scope: per-submission
/// sessions at the derived seed for sparsify/lp/mcmf, one prepared handle
/// per distinct graph at the master seed for Laplacian solves — exactly the
/// batch engine's contract, keyed by submission index.
fn sequential_reference(requests: &[Request]) -> Vec<Result<bcc_core::Outcome<Response>, Error>> {
    let engine = StreamEngine::builder().seed(MASTER_SEED).build();
    let mut prepared: HashMap<u128, Result<PreparedLaplacian, Error>> = HashMap::new();
    requests
        .iter()
        .enumerate()
        .map(|(i, request)| {
            let mut session = Session::builder().seed(engine.request_seed(i)).build();
            match request {
                Request::Sparsify { graph, epsilon } => session
                    .sparsify(graph, *epsilon)
                    .map(|o| o.map(Response::Sparsify)),
                Request::Laplacian { graph, b, .. } => {
                    let key = bcc_core::graph::fingerprint::fingerprint(graph).as_u128();
                    let handle = prepared.entry(key).or_insert_with(|| {
                        Session::builder()
                            .seed(MASTER_SEED)
                            .build()
                            .laplacian(graph)
                            .preprocess()
                    });
                    match handle {
                        Ok(handle) => handle.solve(b).map(|o| o.map(Response::Laplacian)),
                        Err(e) => Err(e.clone()),
                    }
                }
                Request::Lp { instance, request } => {
                    session.lp(instance, request).map(|o| o.map(Response::Lp))
                }
                Request::MinCostMaxFlow { instance, options } => match options {
                    Some(opts) => session.min_cost_max_flow_with(instance, opts),
                    None => session.min_cost_max_flow(instance),
                }
                .map(|o| o.map(Response::MinCostMaxFlow)),
            }
        })
        .collect()
}

fn assert_results_match(
    got: &[Result<bcc_core::Outcome<Response>, Error>],
    want: &[Result<bcc_core::Outcome<Response>, Error>],
) {
    assert_eq!(got.len(), want.len());
    for (i, (got, want)) in got.iter().zip(want).enumerate() {
        match (got, want) {
            (Ok(got), Ok(want)) => {
                assert_eq!(got.value, want.value, "submission {i} value");
                assert_eq!(got.report, want.report, "submission {i} report");
            }
            (Err(got), Err(want)) => assert_eq!(got, want, "submission {i} error"),
            other => panic!("submission {i}: stream and sequential disagree: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-identity: stream == sequential Session loop at equal seeds, for any
// worker count, priority mix and interleaving of submission and collection.
// ---------------------------------------------------------------------------

#[test]
fn interleaved_stream_is_bit_identical_to_the_sequential_session_loop() {
    let workload = mixed_workload();
    let reference =
        sequential_reference(&workload.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>());

    let mut engine = StreamEngine::builder().seed(MASTER_SEED).workers(4).build();
    let output = engine.serve(|client| {
        // Interleave submission and collection: submit two, collect the
        // first, submit the rest, then collect everything else in reverse
        // submission order. Scheduling and collection order must not matter.
        let mut tickets: Vec<Ticket> = Vec::new();
        for (request, priority) in &workload[..2] {
            tickets.push(client.submit(request.clone(), *priority).unwrap());
        }
        let first = client.wait(tickets[0]);
        for (request, priority) in &workload[2..] {
            tickets.push(client.submit(request.clone(), *priority).unwrap());
        }
        let mut collected: Vec<(u64, Result<bcc_core::Outcome<Response>, Error>)> =
            vec![(tickets[0].index(), first)];
        for ticket in tickets[1..].iter().rev() {
            collected.push((ticket.index(), client.wait(*ticket)));
        }
        collected.sort_by_key(|(index, _)| *index);
        collected
            .into_iter()
            .map(|(_, result)| result)
            .collect::<Vec<_>>()
    });

    assert_results_match(&output.value, &reference);
    assert!(output.uncollected.is_empty(), "everything was collected");
    assert_eq!(output.report.requests, workload.len() as u64);
    assert_eq!(output.report.failures, 0);
    assert_eq!(output.report.interactive, 3);
    assert_eq!(output.report.bulk, 3);
    assert_eq!(output.report.cache_hits, 1, "repeated grid topology");
    assert_eq!(output.report.cache_misses, 2, "two distinct topologies");

    // The per-request accounting mirrors the batch vocabulary: submission
    // order, derived seeds, per-solve reports.
    for (i, cost) in output.report.per_request.iter().enumerate() {
        assert_eq!(cost.index, i as u64);
        assert_eq!(cost.seed, engine.request_seed(i));
        assert!(cost.ok);
        assert_eq!(
            cost.report,
            reference[i].as_ref().unwrap().report,
            "submission {i} metered report"
        );
    }
}

#[test]
fn worker_count_and_interleaving_do_not_change_results_or_report() {
    let workload = mixed_workload();

    // Engine A: one worker, submit-all-then-wait-all.
    let mut one = StreamEngine::builder().seed(MASTER_SEED).workers(1).build();
    let out_one = one.serve(|client| {
        let tickets: Vec<Ticket> = workload
            .iter()
            .map(|(r, p)| client.submit(r.clone(), *p).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| client.wait(t))
            .collect::<Vec<_>>()
    });

    // Engine B: seven workers, lock-step submit-then-wait (a completely
    // different interleaving — at most one request in flight at a time).
    let mut many = StreamEngine::builder().seed(MASTER_SEED).workers(7).build();
    let out_many = many.serve(|client| {
        workload
            .iter()
            .map(|(r, p)| {
                let ticket = client.submit(r.clone(), *p).unwrap();
                client.wait(ticket)
            })
            .collect::<Vec<_>>()
    });

    assert_results_match(&out_one.value, &out_many.value);
    // The whole report — per-request costs, cache accounting, priorities,
    // totals, even the cache-level counters (the cache is unbounded here) —
    // is scheduling-independent.
    assert_eq!(out_one.report, out_many.report);

    // And identical to the batch engine serving the same requests as one
    // closed slice at the same master seed.
    let requests: Vec<Request> = workload.iter().map(|(r, _)| r.clone()).collect();
    let mut batch = BatchEngine::builder().seed(MASTER_SEED).workers(3).build();
    let batch_out = batch.run(&requests);
    assert_results_match(&out_one.value, &batch_out.results);
}

#[test]
fn priorities_affect_scheduling_only_never_results() {
    let workload = mixed_workload();
    let mut bulk_only = StreamEngine::builder().seed(MASTER_SEED).workers(3).build();
    let out_bulk = bulk_only.serve(|client| {
        let tickets: Vec<Ticket> = workload
            .iter()
            .map(|(r, _)| client.submit(r.clone(), Priority::Bulk).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| client.wait(t))
            .collect::<Vec<_>>()
    });
    let mut interactive_only = StreamEngine::builder().seed(MASTER_SEED).workers(3).build();
    let out_interactive = interactive_only.serve(|client| {
        let tickets: Vec<Ticket> = workload
            .iter()
            .map(|(r, _)| client.submit(r.clone(), Priority::Interactive).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| client.wait(t))
            .collect::<Vec<_>>()
    });
    assert_results_match(&out_bulk.value, &out_interactive.value);
    assert_eq!(out_bulk.report.bulk, workload.len() as u64);
    assert_eq!(out_interactive.report.interactive, workload.len() as u64);
    assert_eq!(out_bulk.report.total, out_interactive.report.total);
}

// ---------------------------------------------------------------------------
// Backpressure: the bounded queue blocks or rejects, per policy.
// ---------------------------------------------------------------------------

#[test]
fn block_policy_admits_everything_through_a_tiny_queue() {
    let grid = generators::grid(4, 4);
    let requests: Vec<Request> = (1..=8)
        .map(|k| {
            let mut b = vec![0.0; grid.n()];
            b[k % grid.n()] = 1.0;
            b[grid.n() - 1 - k % grid.n()] -= 1.0;
            Request::laplacian(grid.clone(), b)
        })
        .collect();
    let reference = sequential_reference(&requests);

    let mut engine = StreamEngine::builder()
        .seed(MASTER_SEED)
        .workers(2)
        .queue_capacity(1)
        .backpressure(BackpressurePolicy::Block)
        .build();
    let output = engine.serve(|client| {
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| {
                client
                    .submit(r.clone(), Priority::Bulk)
                    .expect("blocking backpressure never rejects")
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| client.wait(t))
            .collect::<Vec<_>>()
    });
    assert_results_match(&output.value, &reference);
    assert_eq!(output.report.rejected, 0);
    assert_eq!(output.report.requests, 8);
}

#[test]
fn reject_policy_surfaces_a_typed_overloaded_error() {
    // One worker, a two-slot queue, and a worker-occupying first request: a
    // rapid burst behind it must overflow the queue. (The burst outnumbers
    // the queue by enough that the single busy worker cannot drain it,
    // whatever the thread timing.)
    let burst = 16usize;
    let capacity = 2usize;
    let mut engine = StreamEngine::builder()
        .seed(MASTER_SEED)
        .workers(1)
        .queue_capacity(capacity)
        .backpressure(BackpressurePolicy::Reject)
        .build();

    let grid = generators::grid(4, 4);
    let mut b = vec![0.0; grid.n()];
    b[0] = 1.0;
    b[15] = -1.0;

    let output = engine.serve(|client| {
        let slow = client
            .submit(
                Request::sparsify(generators::complete(16), 0.5),
                Priority::Interactive,
            )
            .expect("the queue is empty at the first submission");
        let mut accepted = vec![slow];
        let mut rejected = 0u64;
        for _ in 0..burst {
            match client.submit(Request::laplacian(grid.clone(), b.clone()), Priority::Bulk) {
                Ok(ticket) => accepted.push(ticket),
                Err(Error::Overloaded { capacity: c }) => {
                    assert_eq!(c, capacity);
                    rejected += 1;
                }
                Err(other) => panic!("expected Overloaded, got {other}"),
            }
        }
        (accepted, rejected)
    });

    let (accepted, rejected) = output.value;
    assert!(rejected > 0, "the burst must overflow the two-slot queue");
    assert_eq!(output.report.rejected, rejected);
    assert_eq!(output.report.requests, accepted.len() as u64);
    // Rejected submissions consume no index: the admitted sequence is dense,
    // so it is bit-identical to a sequential loop over the admitted requests.
    let mut admitted_requests = vec![Request::sparsify(generators::complete(16), 0.5)];
    admitted_requests
        .extend((1..accepted.len()).map(|_| Request::laplacian(grid.clone(), b.clone())));
    let reference = sequential_reference(&admitted_requests);
    let drained: Vec<_> = output.uncollected.into_iter().map(|(_, r)| r).collect();
    assert_results_match(&drained, &reference);
    assert_eq!(output.report.failures, 0);
}

// ---------------------------------------------------------------------------
// Shutdown: returning from the serve scope drains every admitted request.
// ---------------------------------------------------------------------------

#[test]
fn drain_on_shutdown_completes_every_unconsumed_ticket() {
    let workload = mixed_workload();
    let reference =
        sequential_reference(&workload.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>());
    let mut engine = StreamEngine::builder().seed(MASTER_SEED).workers(3).build();
    let output = engine.serve(|client| {
        for (request, priority) in &workload {
            client.submit(request.clone(), *priority).unwrap();
        }
        // Return without waiting for anything: the engine must drain.
    });
    assert_eq!(output.uncollected.len(), workload.len());
    for (expected_index, (index, _)) in output.uncollected.iter().enumerate() {
        assert_eq!(*index, expected_index as u64, "submission order");
    }
    let drained: Vec<_> = output.uncollected.into_iter().map(|(_, r)| r).collect();
    assert_results_match(&drained, &reference);
    assert_eq!(output.report.requests, workload.len() as u64);
    assert_eq!(output.report.failures, 0);
}

#[test]
fn failures_are_isolated_and_metered_as_in_batch() {
    let grid = generators::grid(4, 4);
    let mut b = vec![0.0; grid.n()];
    b[0] = 1.0;
    b[15] = -1.0;
    let disconnected = Graph::from_edges(6, [(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)]);

    let mut engine = StreamEngine::builder().seed(MASTER_SEED).workers(3).build();
    let output = engine.serve(|client| {
        let healthy = client
            .submit(Request::laplacian(grid.clone(), b.clone()), Priority::Bulk)
            .unwrap();
        let broken = client
            .submit(
                Request::laplacian(disconnected.clone(), vec![0.0; 6]),
                Priority::Interactive,
            )
            .unwrap();
        let nan = client
            .submit(
                Request::sparsify(generators::complete(10), f64::NAN),
                Priority::Bulk,
            )
            .unwrap();
        let again = client
            .submit(Request::laplacian(grid.clone(), b.clone()), Priority::Bulk)
            .unwrap();
        (
            client.wait(healthy),
            client.wait(broken),
            client.wait(nan),
            client.wait(again),
        )
    });
    let (healthy, broken, nan, again) = output.value;
    assert!(healthy.is_ok());
    assert!(matches!(
        broken,
        Err(Error::Laplacian(
            bcc_core::laplacian::LaplacianError::Disconnected
        ))
    ));
    assert!(matches!(nan, Err(Error::InvalidEpsilon { .. })));
    assert!(again.is_ok());
    assert_eq!(output.report.failures, 2);
    assert!(!output.report.per_request[1].ok);
    assert!(output.report.per_request[1]
        .error
        .as_deref()
        .unwrap()
        .contains("connected"));
    assert_eq!(output.report.per_request[1].report.total_rounds, 0);
    // The failed preprocessing is cached (and reported) with zero rounds.
    let failed_entry = output
        .report
        .preprocessing
        .iter()
        .find(|p| {
            p.fingerprint == bcc_core::graph::fingerprint::fingerprint(&disconnected).to_hex()
        })
        .unwrap();
    assert_eq!(failed_entry.report.total_rounds, 0);
    // Failures are excluded from the estimation-error replay, exactly as
    // the live calibration loop skips them: the interactive class's only
    // submission failed, so it has nothing predicted or measured.
    let interactive = output
        .report
        .scheduler
        .class(Priority::Interactive)
        .unwrap();
    assert_eq!(interactive.predicted_rounds, 0);
    assert_eq!(interactive.actual_rounds, 0);
    assert_eq!(interactive.estimation_error(), None);
}

// ---------------------------------------------------------------------------
// Bounded cache: capacity is enforced, eviction never changes results.
// ---------------------------------------------------------------------------

#[test]
fn cache_eviction_under_capacity_one_is_correct_and_bounded() {
    // Alternate between two topologies so a capacity-1 cache must evict on
    // (nearly) every switch, with 4 workers racing on it.
    let a = generators::grid(4, 4);
    let c = generators::grid(3, 5);
    let mut requests = Vec::new();
    for k in 1..=3 {
        for g in [&a, &c] {
            let mut b = vec![0.0; g.n()];
            b[k % g.n()] = 1.0;
            b[g.n() - 1 - k % g.n()] -= 1.0;
            requests.push(Request::laplacian(g.clone(), b));
        }
    }
    let reference = sequential_reference(&requests);

    let mut bounded = StreamEngine::builder()
        .seed(MASTER_SEED)
        .workers(4)
        .cache_capacity(1)
        .build();
    let output = bounded.serve(|client| {
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| client.submit(r.clone(), Priority::Bulk).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| client.wait(t))
            .collect::<Vec<_>>()
    });

    // Eviction re-pays preprocessing but never changes a result.
    assert_results_match(&output.value, &reference);
    // The bound is enforced...
    assert!(bounded.cached_graphs() <= 1, "cache exceeded its capacity");
    assert_eq!(output.report.cache.capacity, Some(1));
    assert!(output.report.cache.entries <= 1);
    // ...and was actually exercised.
    let stats = bounded.cache_stats();
    assert!(
        stats.evictions >= 1,
        "two alternating topologies under capacity 1 must evict: {stats:?}"
    );
    assert!(
        stats.misses >= 2,
        "at least one build per distinct topology: {stats:?}"
    );

    // The batch engine shares the same bounded-cache machinery.
    let mut bounded_batch = BatchEngine::builder()
        .seed(MASTER_SEED)
        .workers(4)
        .cache_capacity(1)
        .build();
    let batch_out = bounded_batch.run(&requests);
    assert_results_match(&batch_out.results, &reference);
    assert!(bounded_batch.cached_graphs() <= 1);
    assert_eq!(batch_out.report.cache.capacity, Some(1));
}

// ---------------------------------------------------------------------------
// WFQ scheduling: weights, rate limits and custom classes affect latency
// only; deadlines expire queued work with a typed error.
// ---------------------------------------------------------------------------

#[test]
fn wfq_weights_rate_limits_and_custom_classes_never_change_results() {
    let workload = mixed_workload();
    let requests: Vec<Request> = workload.iter().map(|(r, _)| r.clone()).collect();
    let reference = sequential_reference(&requests);

    // A deliberately adversarial configuration: inverted weights, a tight
    // token bucket on interactive traffic, and a third (custom) class in the
    // mix. None of it may leak into results — WFQ only reorders completion.
    let classes = [
        Priority::custom(7),
        Priority::Bulk,
        Priority::Interactive,
        Priority::custom(7),
        Priority::Bulk,
        Priority::Interactive,
    ];
    let mut engine = StreamEngine::builder()
        .seed(MASTER_SEED)
        .workers(4)
        .class_weight(Priority::Bulk, 6)
        .class_weight(Priority::Interactive, 1)
        .class_weight(Priority::custom(7), 3)
        .class_rate_limit(Priority::Interactive, RateLimit::new(1, 3))
        .build();
    assert_eq!(engine.class_weight(Priority::Bulk), 6);
    assert_eq!(
        engine.class_rate_limit(Priority::Interactive),
        Some(RateLimit::new(1, 3))
    );
    let output = engine.serve(|client| {
        let tickets: Vec<Ticket> = requests
            .iter()
            .zip(classes)
            .map(|(r, class)| client.submit(r.clone(), class).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| client.wait(t))
            .collect::<Vec<_>>()
    });
    assert_results_match(&output.value, &reference);

    // The scheduler counters reflect the class mix deterministically.
    let scheduler = &output.report.scheduler;
    assert_eq!(scheduler.policy, "wfq");
    let labels: Vec<&str> = scheduler.classes.iter().map(|c| c.class.as_str()).collect();
    assert_eq!(labels, vec!["interactive", "bulk", "custom-7"]);
    for class in [Priority::Interactive, Priority::Bulk, Priority::custom(7)] {
        let stats = scheduler.class(class).unwrap();
        assert_eq!(stats.submitted, 2, "{class:?}");
        assert_eq!(stats.dispatched, 2, "every admitted job dispatches");
        assert_eq!(stats.expired, 0);
    }
    assert_eq!(
        scheduler.class(Priority::Interactive).unwrap().rate_limit,
        Some(RateLimit::new(1, 3))
    );
    assert_eq!(scheduler.class(Priority::Bulk).unwrap().weight, 6);
    assert_eq!(output.report.expired, 0);
}

#[test]
fn cost_aware_eviction_is_result_identical_under_capacity_pressure() {
    // The capacity-1 alternating-topology workload of the LRU test, under
    // the cost-aware policy: eviction victims may differ, results may not.
    let a = generators::grid(4, 4);
    let c = generators::grid(3, 5);
    let mut requests = Vec::new();
    for k in 1..=3 {
        for g in [&a, &c] {
            let mut b = vec![0.0; g.n()];
            b[k % g.n()] = 1.0;
            b[g.n() - 1 - k % g.n()] -= 1.0;
            requests.push(Request::laplacian(g.clone(), b));
        }
    }
    let reference = sequential_reference(&requests);

    let mut engine = StreamEngine::builder()
        .seed(MASTER_SEED)
        .workers(4)
        .cache_capacity(1)
        .eviction_policy(EvictionPolicy::CostAware)
        .build();
    assert_eq!(engine.eviction_policy(), EvictionPolicy::CostAware);
    let output = engine.serve(|client| {
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| client.submit(r.clone(), Priority::Bulk).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| client.wait(t))
            .collect::<Vec<_>>()
    });
    assert_results_match(&output.value, &reference);
    assert!(engine.cached_graphs() <= 1, "capacity bound holds");
    assert_eq!(output.report.cache.policy, "cost-aware");
    let stats = engine.cache_stats();
    assert!(stats.evictions >= 1, "alternation under capacity 1 evicts");
    assert_eq!(
        stats.evictions,
        stats.cost_evictions + stats.lru_evictions,
        "per-policy counters partition the total"
    );
    assert_eq!(stats.lru_evictions, 0, "the active policy is charged");
}

#[test]
fn a_zero_deadline_expires_in_queue_with_a_typed_error() {
    let grid = generators::grid(4, 4);
    let mut b = vec![0.0; grid.n()];
    b[0] = 1.0;
    b[15] = -1.0;

    // One worker pinned on a slow job: the deadline submission behind it is
    // still queued when its (already elapsed) deadline is checked.
    let mut engine = StreamEngine::builder().seed(MASTER_SEED).workers(1).build();
    let output = engine.serve(|client| {
        let slow = client
            .submit(
                Request::sparsify(generators::complete(16), 0.5),
                Priority::Interactive,
            )
            .unwrap();
        let doomed = client
            .submit_with_deadline(
                Request::laplacian(grid.clone(), b.clone()),
                Priority::Bulk,
                std::time::Duration::ZERO,
            )
            .unwrap();
        (client.wait(slow), client.wait(doomed))
    });
    let (slow, doomed) = output.value;
    assert!(slow.is_ok(), "work without a deadline is untouched");
    assert!(matches!(doomed, Err(Error::DeadlineExceeded { .. })));

    // The expiry is fully accounted: a failure, per class and in total.
    assert_eq!(output.report.expired, 1);
    assert_eq!(output.report.failures, 1);
    let bulk = output.report.scheduler.class(Priority::Bulk).unwrap();
    assert_eq!(bulk.expired, 1);
    assert_eq!(bulk.dispatched, 0, "expired work is never dispatched");
    let cost = &output.report.per_request[1];
    assert!(!cost.ok);
    assert!(cost.error.as_deref().unwrap().contains("deadline exceeded"));
    assert_eq!(cost.report.total_rounds, 0, "expired work is never metered");
    assert_eq!(
        cost.fingerprint, None,
        "expired work never touches the Laplacian cache"
    );
    assert!(
        output.report.preprocessing.is_empty(),
        "no preprocessing was built for the expired topology"
    );

    // Even with idle workers an already-elapsed deadline expires: deadlines
    // are checked before every dispatch, so zero-deadline work is never run.
    let mut idle = StreamEngine::builder().seed(MASTER_SEED).workers(4).build();
    let output = idle.serve(|client| {
        let doomed = client
            .submit_with_deadline(
                Request::laplacian(grid.clone(), b.clone()),
                Priority::Interactive,
                std::time::Duration::ZERO,
            )
            .unwrap();
        client.wait(doomed)
    });
    assert!(matches!(output.value, Err(Error::DeadlineExceeded { .. })));
    assert_eq!(output.report.expired, 1);
}

#[test]
fn dispatched_work_always_completes_within_a_generous_deadline() {
    let workload = mixed_workload();
    let reference =
        sequential_reference(&workload.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>());
    let mut engine = StreamEngine::builder().seed(MASTER_SEED).workers(3).build();
    let output = engine.serve(|client| {
        let tickets: Vec<Ticket> = workload
            .iter()
            .map(|(r, p)| {
                client
                    .submit_with_deadline(r.clone(), *p, std::time::Duration::from_secs(3600))
                    .unwrap()
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| client.wait(t))
            .collect::<Vec<_>>()
    });
    // A deadline that never trips changes nothing: bit-identical results,
    // zero expirations, every job dispatched.
    assert_results_match(&output.value, &reference);
    assert_eq!(output.report.expired, 0);
    assert_eq!(output.report.failures, 0);
    let dispatched: u64 = output
        .report
        .scheduler
        .classes
        .iter()
        .map(|c| c.dispatched)
        .sum();
    assert_eq!(dispatched, workload.len() as u64);
}

// ---------------------------------------------------------------------------
// Injectable clocks: a frozen VirtualClock makes every time-dependent
// decision — deadline expiry and the latency report — deterministic.
// ---------------------------------------------------------------------------

#[test]
fn a_frozen_virtual_clock_expires_zero_deadlines_deterministically() {
    let grid = generators::grid(4, 4);
    let mut b = vec![0.0; grid.n()];
    b[0] = 1.0;
    b[15] = -1.0;

    // Under a frozen clock, time-dependent behavior is a pure function of
    // the submissions: an already-elapsed deadline expires on every run and
    // every worker count, a generous one never trips.
    for workers in [1, 4] {
        let clock = std::sync::Arc::new(VirtualClock::new());
        let mut engine = StreamEngine::builder()
            .seed(MASTER_SEED)
            .workers(workers)
            .clock(clock)
            .build();
        let output = engine.serve(|client| {
            let doomed = client
                .submit_with_deadline(
                    Request::laplacian(grid.clone(), b.clone()),
                    Priority::Interactive,
                    std::time::Duration::ZERO,
                )
                .unwrap();
            let safe = client
                .submit_with_deadline(
                    Request::laplacian(grid.clone(), b.clone()),
                    Priority::Bulk,
                    std::time::Duration::from_secs(3600),
                )
                .unwrap();
            (client.wait(doomed), client.wait(safe))
        });
        let (doomed, safe) = output.value;
        assert!(matches!(doomed, Err(Error::DeadlineExceeded { .. })));
        assert!(safe.is_ok(), "a frozen clock never reaches a real deadline");
        assert_eq!(output.report.expired, 1);
    }
}

#[test]
fn a_frozen_virtual_clock_reports_all_zero_latency_samples() {
    let workload = mixed_workload();
    let mut reports = Vec::new();
    for workers in [1, 3] {
        let clock = std::sync::Arc::new(VirtualClock::new());
        let mut engine = StreamEngine::builder()
            .seed(MASTER_SEED)
            .workers(workers)
            .clock(clock)
            .build();
        let output = engine.serve(|client| {
            let tickets: Vec<Ticket> = workload
                .iter()
                .map(|(r, p)| client.submit(r.clone(), *p).unwrap())
                .collect();
            for t in tickets {
                let _ = client.wait(t);
            }
        });
        // Every completion was timestamped against a clock that never moved,
        // so each percentile of each axis collapses to exactly zero.
        let completed: u64 = output
            .report
            .scheduler
            .classes
            .iter()
            .map(|c| c.dispatched)
            .sum();
        let sampled: u64 = output
            .latency
            .classes
            .iter()
            .map(|c| c.end_to_end.samples)
            .sum();
        assert_eq!(sampled, completed, "one sample per dispatched request");
        for class in &output.latency.classes {
            for axis in [&class.queue_wait, &class.end_to_end] {
                assert_eq!(axis.p50_ns, 0);
                assert_eq!(axis.p95_ns, 0);
                assert_eq!(axis.p99_ns, 0);
                assert_eq!(axis.max_ns, 0);
            }
        }
        reports.push(output.latency);
    }
    // With wall time out of the picture the whole latency report is
    // reproducible across worker counts.
    assert_eq!(reports[0], reports[1]);
}

#[test]
fn a_frozen_virtual_clock_traces_a_reconciled_lifecycle() {
    let workload = mixed_workload();
    for workers in [1, 3] {
        let clock = std::sync::Arc::new(VirtualClock::new());
        let sink = TelemetrySink::enabled();
        let mut engine = StreamEngine::builder()
            .seed(MASTER_SEED)
            .workers(workers)
            .clock(clock)
            .telemetry(sink.clone())
            .build();
        let output = engine.serve(|client| {
            let tickets: Vec<Ticket> = workload
                .iter()
                .map(|(r, p)| client.submit(r.clone(), *p).unwrap())
                .collect();
            for t in tickets {
                let _ = client.wait(t);
            }
        });
        let records = sink.trace_records();
        assert_eq!(sink.dropped_events(), 0);
        // A frozen clock pins every event timestamp at zero whatever the
        // worker interleaving — the trace's time axis is deterministic.
        assert!(records.iter().all(|r| r.at_ns == 0));
        let count = |event: TraceEvent| records.iter().filter(|r| r.event == event).count() as u64;
        let dispatched: u64 = output
            .report
            .scheduler
            .classes
            .iter()
            .map(|c| c.dispatched)
            .sum();
        // The lifecycle reconciles exactly with the engine's accounting:
        // one event per state transition, none dropped or double-fired.
        assert_eq!(count(TraceEvent::Submitted), output.report.requests);
        assert_eq!(count(TraceEvent::Queued), output.report.requests);
        assert_eq!(count(TraceEvent::Dispatched), dispatched);
        assert_eq!(count(TraceEvent::SolveBegin), dispatched);
        assert_eq!(count(TraceEvent::SolveEnd), dispatched);
        assert_eq!(count(TraceEvent::Collected), output.report.requests);
        assert_eq!(count(TraceEvent::Expired), output.report.expired);
        // The exported timeline is well-formed and carries one instant
        // event per record plus per-lane metadata.
        let chrome = sink.chrome_trace().expect("enabled sink exports");
        assert!(chrome.starts_with('{') && chrome.ends_with('}'));
        assert_eq!(
            chrome.matches("\"ph\":\"i\"").count(),
            records.len(),
            "one instant event per trace record"
        );
    }
}

// ---------------------------------------------------------------------------
// The unified cost model: size-aware tags and deadline-aware admission steer
// latency only; estimation error is reported deterministically.
// ---------------------------------------------------------------------------

#[test]
fn cost_aware_tags_on_and_off_are_bit_identical_across_configurations() {
    let workload = mixed_workload();
    let requests: Vec<Request> = workload.iter().map(|(r, _)| r.clone()).collect();
    let reference = sequential_reference(&requests);

    // The estimation-error baseline every configuration must reproduce: a
    // single-worker scope over the same submissions.
    let reference_report = {
        let mut engine = StreamEngine::builder().seed(MASTER_SEED).workers(1).build();
        engine
            .serve(|client| {
                for (r, p) in &workload {
                    client.submit(r.clone(), *p).unwrap();
                }
            })
            .report
    };

    // Sweep worker counts, adversarial weights, a rate limit, generous
    // deadlines and both tag disciplines: none of it may leak into results.
    for workers in [1, 3, 7] {
        for cost_aware in [true, false] {
            let mut engine = StreamEngine::builder()
                .seed(MASTER_SEED)
                .workers(workers)
                .cost_aware_tags(cost_aware)
                .class_weight(Priority::Bulk, 5)
                .class_weight(Priority::Interactive, 1)
                .class_rate_limit(Priority::Bulk, RateLimit::new(1, 3))
                .build();
            assert_eq!(engine.cost_aware_tags(), cost_aware);
            let output = engine.serve(|client| {
                let tickets: Vec<Ticket> = workload
                    .iter()
                    .map(|(r, p)| {
                        client
                            .submit_with_deadline(
                                r.clone(),
                                *p,
                                std::time::Duration::from_secs(3600),
                            )
                            .unwrap()
                    })
                    .collect();
                tickets
                    .into_iter()
                    .map(|t| client.wait(t))
                    .collect::<Vec<_>>()
            });
            assert_results_match(&output.value, &reference);
            assert_eq!(output.report.expired, 0, "generous deadlines never trip");
            assert_eq!(output.report.infeasible, 0);

            // The reported estimation error is a deterministic replay of
            // the calibration loop in submission order: identical whatever
            // the worker count or tag discipline.
            let scheduler = &output.report.scheduler;
            for class in &scheduler.classes {
                if class.class == "interactive" {
                    // sparsify + laplacian + lp all completed under this
                    // class; the replay observed every one of them.
                    assert!(class.actual_rounds > 0);
                }
            }
            for (got, want) in scheduler
                .classes
                .iter()
                .zip(&reference_report.scheduler.classes)
            {
                assert_eq!(got.class, want.class);
                assert_eq!(got.predicted_rounds, want.predicted_rounds, "{}", got.class);
                assert_eq!(got.actual_rounds, want.actual_rounds, "{}", got.class);
            }
        }
    }
}

#[test]
fn calibration_tightens_the_estimation_error_across_scopes() {
    // First scope: the model runs on priors, so predicted and actual can
    // be far apart. Second scope over the same workload: the replay starts
    // fresh each scope, but within one scope later requests of a kind are
    // predicted from earlier observations of that kind — repeated
    // laplacian solves on one topology converge onto the measured rate.
    let grid = generators::grid(4, 4);
    let requests: Vec<Request> = (1..=6)
        .map(|k| {
            let mut b = vec![0.0; grid.n()];
            b[k % grid.n()] = 1.0;
            b[grid.n() - 1 - k % grid.n()] -= 1.0;
            Request::laplacian(grid.clone(), b)
        })
        .collect();
    let mut engine = StreamEngine::builder().seed(MASTER_SEED).workers(2).build();
    let output = engine.serve(|client| {
        for r in &requests {
            client.submit(r.clone(), Priority::Bulk).unwrap();
        }
    });
    let bulk = output.report.scheduler.class(Priority::Bulk).unwrap();
    assert!(bulk.actual_rounds > 0);
    assert!(bulk.predicted_rounds > 0, "the prior predicts something");
    let error = bulk.estimation_error().expect("rounds were charged");
    // Six solves on one topology: after the first observation the replay
    // predicts at the measured per-unit rate, so the aggregate error is
    // far below the uncalibrated prior's (which mispredicts every solve).
    let prior_only = bcc_core::CostModel::new();
    let (kind, dims) = requests[0].cost_profile();
    let prior_predicted = prior_only.prior_estimate(kind, dims) * requests.len() as u64;
    let prior_error =
        (prior_predicted.abs_diff(bulk.actual_rounds)) as f64 / bulk.actual_rounds as f64;
    assert!(
        error <= prior_error,
        "calibration must not be worse than the prior: {error} vs {prior_error}"
    );
    // The live engine model is calibrated too, and the cache recorded its
    // rebuild estimation error.
    assert!(
        engine
            .cost_model()
            .observations(bcc_core::CostKind::LaplacianSolve)
            >= 6
    );
    assert!(output.report.cache.rebuild_actual_rounds > 0);
    assert!(output.report.cache.rebuild_predicted_rounds > 0);
}

#[test]
fn an_idle_engine_never_rejects_a_deadline_as_infeasible() {
    // Regression guard for deadline-aware admission: with no backlog the
    // expected wait is zero, so even a zero deadline — and even on a fully
    // calibrated engine — must be admitted (and then expire in the queue
    // with DeadlineExceeded, never DeadlineInfeasible).
    let grid = generators::grid(4, 4);
    let mut b = vec![0.0; grid.n()];
    b[0] = 1.0;
    b[15] = -1.0;
    let mut engine = StreamEngine::builder().seed(MASTER_SEED).workers(2).build();

    // Calibrate the service rate with a completed scope.
    engine.serve(|client| {
        let t = client
            .submit(Request::laplacian(grid.clone(), b.clone()), Priority::Bulk)
            .unwrap();
        client.wait(t).unwrap();
    });
    assert!(
        engine.cost_model().expected_duration(1).is_some(),
        "the service rate is calibrated"
    );

    // Idle engine, zero deadline: admitted, then expired — not infeasible.
    let output = engine.serve(|client| {
        let doomed = client
            .submit_with_deadline(
                Request::laplacian(grid.clone(), b.clone()),
                Priority::Bulk,
                std::time::Duration::ZERO,
            )
            .expect("an idle engine admits every deadline");
        client.wait(doomed)
    });
    assert!(matches!(output.value, Err(Error::DeadlineExceeded { .. })));
    assert_eq!(output.report.infeasible, 0);

    // And a generous deadline on the idle engine just completes.
    let output = engine.serve(|client| {
        let t = client
            .submit_with_deadline(
                Request::laplacian(grid.clone(), b.clone()),
                Priority::Bulk,
                std::time::Duration::from_secs(3600),
            )
            .unwrap();
        client.wait(t)
    });
    assert!(output.value.is_ok());
    assert_eq!(output.report.infeasible, 0);
    assert_eq!(output.report.expired, 0);

    // Cold-bucket case: the engine is busy and its service rate is
    // calibrated, but the probe's own `(kind, size-bucket)` cell has never
    // been observed — its round estimate is a guess, so admission must stay
    // permissive no matter how tight the deadline. It is admitted and then
    // expires (or completes), never DeadlineInfeasible.
    let output = engine.serve(|client| {
        let backlog: Vec<Ticket> = (0..4)
            .map(|_| {
                client
                    .submit(Request::laplacian(grid.clone(), b.clone()), Priority::Bulk)
                    .unwrap()
            })
            .collect();
        let cold = client
            .submit_with_deadline(
                Request::sparsify(generators::complete(10), 0.5),
                Priority::Bulk,
                std::time::Duration::ZERO,
            )
            .expect("an uncalibrated bucket is never rejected as infeasible");
        let verdict = client.wait(cold);
        for t in backlog {
            client.wait(t).unwrap();
        }
        verdict
    });
    assert_eq!(output.report.infeasible, 0);
    match output.value {
        Ok(_) | Err(Error::DeadlineExceeded { .. }) => {}
        Err(other) => panic!("expected success or expiry, got {other}"),
    }
}

#[test]
fn an_infeasible_deadline_is_rejected_at_admission_with_a_typed_error() {
    let mut engine = StreamEngine::builder().seed(MASTER_SEED).workers(1).build();

    // Scope 1 calibrates the service rate (sparsify rounds and duration).
    engine.serve(|client| {
        let t = client
            .submit(
                Request::sparsify(generators::complete(14), 0.5),
                Priority::Interactive,
            )
            .unwrap();
        client.wait(t).unwrap();
    });

    // Scope 2: the single worker is pinned on the first slow job while a
    // second is still queued — a zero deadline behind that backlog is
    // infeasible by any calibrated estimate.
    let output = engine.serve(|client| {
        let running = client
            .submit(
                Request::sparsify(generators::complete(16), 0.5),
                Priority::Interactive,
            )
            .unwrap();
        let queued = client
            .submit(
                Request::sparsify(generators::complete(14), 0.5),
                Priority::Interactive,
            )
            .unwrap();
        // The probe shares the sparsify `(kind, bucket)` cell scope 1
        // warmed — a cold bucket would be admitted unconditionally.
        let verdict = client.submit_with_deadline(
            Request::sparsify(generators::complete(14), 0.5),
            Priority::Interactive,
            std::time::Duration::ZERO,
        );
        let rejected = match verdict {
            Err(Error::DeadlineInfeasible {
                deadline,
                expected_wait,
            }) => {
                assert_eq!(deadline, std::time::Duration::ZERO);
                assert!(expected_wait > std::time::Duration::ZERO);
                true
            }
            Ok(ticket) => {
                // The worker drained the queue faster than we submitted (a
                // scheduling race this test tolerates): the submission was
                // admitted against an empty backlog.
                let _ = client.wait(ticket);
                false
            }
            Err(other) => panic!("expected DeadlineInfeasible, got {other}"),
        };
        let _ = client.wait(running);
        let _ = client.wait(queued);
        rejected
    });
    if output.value {
        assert_eq!(output.report.infeasible, 1);
        let class = output
            .report
            .scheduler
            .class(Priority::Interactive)
            .unwrap();
        assert_eq!(class.infeasible, 1);
        // The rejection consumed no submission index.
        assert_eq!(output.report.requests, 2);
    }
}

#[test]
fn wait_timeout_returns_a_typed_error_and_keeps_the_ticket_redeemable() {
    let requests = [
        Request::sparsify(generators::complete(24), 0.5),
        Request::sparsify(generators::complete(16), 0.5),
    ];
    let reference = sequential_reference(&requests);
    let mut engine = StreamEngine::builder().seed(MASTER_SEED).workers(1).build();
    let output = engine.serve(|client| {
        // Pin the single worker on a slow job; the probe queued behind it
        // cannot possibly have completed when the zero wait looks for it.
        let slow = client
            .submit(requests[0].clone(), Priority::Interactive)
            .unwrap();
        let probe = client
            .submit(requests[1].clone(), Priority::Interactive)
            .unwrap();
        let timed_out = client.wait_timeout(probe, std::time::Duration::ZERO);
        assert!(matches!(timed_out, Err(Error::WaitTimeout { .. })));
        if let Err(e) = timed_out {
            assert!(e.to_string().contains("timed out"));
        }
        // The ticket stays redeemable: a later (generous) timed wait
        // collects the result.
        [slow, probe]
            .into_iter()
            .map(|t| client.wait_timeout(t, std::time::Duration::from_secs(600)))
            .collect::<Vec<_>>()
    });
    assert_results_match(&output.value, &reference);
    assert!(output.uncollected.is_empty());
    assert_eq!(output.report.failures, 0);
}

#[test]
fn stream_cumulative_ledger_accumulates_and_absorbs_into_sessions() {
    let workload = mixed_workload();
    let mut engine = StreamEngine::builder().seed(MASTER_SEED).workers(2).build();
    let first = engine.serve(|client| {
        for (request, priority) in &workload {
            client.submit(request.clone(), *priority).unwrap();
        }
    });
    let after_one = engine.cumulative_report();
    assert_eq!(after_one, first.report.total);
    let second = engine.serve(|client| {
        for (request, priority) in &workload {
            client.submit(request.clone(), *priority).unwrap();
        }
    });
    // The second scope reuses every cached preprocessing.
    assert_eq!(second.report.cache_misses, 0);
    assert!(second.report.total.total_rounds < first.report.total.total_rounds);
    assert_eq!(
        engine.cumulative_report().total_rounds,
        first.report.total.total_rounds + second.report.total.total_rounds
    );

    // Stream totals merge into a serving Session exactly like batch totals.
    let mut session = Session::builder().seed(MASTER_SEED).build();
    session.absorb_report(&first.report.total);
    assert_eq!(session.cumulative_report(), first.report.total);
}

#[test]
#[should_panic(expected = "issued by serve scope")]
fn a_stale_ticket_from_an_earlier_scope_panics_instead_of_misredeeming() {
    let grid = generators::grid(3, 3);
    let mut b = vec![0.0; 9];
    b[0] = 1.0;
    b[8] = -1.0;
    let mut engine = StreamEngine::builder().seed(MASTER_SEED).build();
    let stale = engine
        .serve(|client| {
            client
                .submit(Request::laplacian(grid.clone(), b.clone()), Priority::Bulk)
                .unwrap()
        })
        .value;
    // Scope 2 reuses submission index 0; redeeming the scope-1 ticket would
    // silently return the wrong request's result — it must panic instead.
    engine.serve(|client| {
        client
            .submit(Request::laplacian(grid.clone(), b.clone()), Priority::Bulk)
            .unwrap();
        let _ = client.wait(stale);
    });
}

// ---------------------------------------------------------------------------
// Property: whatever the cost model predicts — adversarial zero, tiny or
// astronomically wrong priors included — scheduling stays starvation-free
// and results stay bit-identical to the sequential Session loop.
// ---------------------------------------------------------------------------

mod cost_model_properties {
    use super::*;
    use bcc_core::{CostKind, CostModel};
    use proptest::prelude::*;

    /// The adversarial prior palette: a selector indexes zero, tiny, the
    /// default-ish, huge, and u64::MAX rounds-per-unit priors.
    fn prior(selector: u64) -> u64 {
        [0, 1, 64, 1 << 30, u64::MAX][(selector % 5) as usize]
    }

    /// A small cross-pipeline workload with a repeated Laplacian topology,
    /// cheap enough to serve once per proptest case.
    fn small_workload() -> Vec<(Request, Priority)> {
        let grid = generators::grid(3, 3);
        let mut b1 = vec![0.0; grid.n()];
        b1[0] = 1.0;
        b1[8] = -1.0;
        let mut b2 = vec![0.0; grid.n()];
        b2[2] = 1.0;
        b2[6] = -1.0;
        let lp = LpInstance {
            a: bcc_core::linalg::CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
            b: vec![1.0],
            c: vec![0.0, 1.0],
            lower: vec![0.0, 0.0],
            upper: vec![1.0, 1.0],
        };
        let lp_request = LpRequest::new(
            vec![0.5, 0.5],
            LpOptions::new(1e-3, lp.m(), 7).with_uniform_weights(),
        );
        vec![
            (Request::laplacian(grid.clone(), b1), Priority::Bulk),
            (
                Request::sparsify(generators::complete(8), 0.5),
                Priority::Interactive,
            ),
            (Request::laplacian(grid, b2), Priority::Bulk),
            (Request::lp(lp, lp_request), Priority::Interactive),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn any_cost_model_output_preserves_bit_identity_and_starvation_freedom(
            selectors in (0u64..5, 0u64..5, 0u64..5, 0u64..5, 0u64..5),
            workers in 1usize..5,
            cost_aware in 0u64..2,
            pool_min in 1usize..4,
            pool_span in 0usize..4,
        ) {
            let make_model = || CostModel::new()
                .with_prior(CostKind::Sparsify, prior(selectors.0))
                .with_prior(CostKind::LaplacianSolve, prior(selectors.1))
                .with_prior(CostKind::LaplacianPreprocess, prior(selectors.2))
                .with_prior(CostKind::Lp, prior(selectors.3))
                .with_prior(CostKind::Mcmf, prior(selectors.4));
            let workload = small_workload();
            let requests: Vec<Request> = workload.iter().map(|(r, _)| r.clone()).collect();
            let reference = sequential_reference(&requests);
            let serve_all = |engine: &mut StreamEngine| {
                engine.serve(|client| {
                    let tickets: Vec<Ticket> = workload
                        .iter()
                        .map(|(r, p)| client.submit(r.clone(), *p).unwrap())
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| client.wait(t))
                        .collect::<Vec<_>>()
                })
            };

            let mut engine = StreamEngine::builder()
                .seed(MASTER_SEED)
                .workers(workers)
                .cost_aware_tags(cost_aware == 1)
                .cost_model(make_model())
                .build();
            // Every wait() returning is the starvation-freedom claim: no
            // tag assignment may leave a submission undispatched forever.
            let output = serve_all(&mut engine);
            assert_results_match(&output.value, &reference);
            prop_assert_eq!(output.report.requests, workload.len() as u64);
            prop_assert_eq!(output.report.failures, 0);
            let dispatched: u64 = output
                .report
                .scheduler
                .classes
                .iter()
                .map(|c| c.dispatched)
                .sum();
            prop_assert_eq!(dispatched, workload.len() as u64);

            // The elastic pool — whatever its bounds, and however the
            // adversarial priors skew the backlog-cost resize decisions —
            // changes only *when* workers run, never what they compute: the
            // full report (results, counters, calibration cells and all)
            // is bit-identical to the fixed-pool engine's.
            let mut elastic = StreamEngine::builder()
                .seed(MASTER_SEED)
                .elastic_workers(pool_min, pool_min + pool_span)
                .cost_aware_tags(cost_aware == 1)
                .cost_model(make_model())
                .build();
            prop_assert_eq!(elastic.worker_bounds(), (pool_min, pool_min + pool_span));
            let elastic_output = serve_all(&mut elastic);
            assert_results_match(&elastic_output.value, &reference);
            prop_assert_eq!(&elastic_output.report, &output.report);
            let pool = elastic_output.pool;
            prop_assert_eq!(pool.min_workers, pool_min);
            prop_assert_eq!(pool.max_workers, pool_min + pool_span);
            prop_assert!(pool.peak_workers >= pool.min_workers);
            prop_assert!(pool.peak_workers <= pool.max_workers);

            // Telemetry stays strictly off the deterministic-report path:
            // a live sink (metrics registry + lifecycle tracing) must leave
            // the report bit-identical to the untelemetered engine's, and
            // the trace must reconcile exactly with the scheduler's own
            // dispatch accounting.
            let sink = TelemetrySink::with_capacity(8, 1024);
            let mut traced = StreamEngine::builder()
                .seed(MASTER_SEED)
                .workers(workers)
                .cost_aware_tags(cost_aware == 1)
                .cost_model(make_model())
                .telemetry(sink.clone())
                .build();
            let traced_output = serve_all(&mut traced);
            assert_results_match(&traced_output.value, &reference);
            prop_assert_eq!(&traced_output.report, &output.report);
            let dispatched_events = sink
                .trace_records()
                .iter()
                .filter(|r| r.event == TraceEvent::Dispatched)
                .count() as u64;
            prop_assert_eq!(dispatched_events, dispatched);
            let snapshot = traced
                .telemetry()
                .metrics_snapshot()
                .expect("enabled sink snapshots");
            prop_assert_eq!(snapshot.counter("stream.dispatched"), dispatched);
        }
    }
}

// ---------------------------------------------------------------------------
// Golden snapshot: the StreamReport JSON schema is stable.
// ---------------------------------------------------------------------------

/// A small handcrafted report with every field populated deterministically.
fn golden_report() -> StreamReport {
    let phase = |rounds: u64, bits: u64, operations: u64| bcc_core::runtime::PhaseStats {
        rounds,
        bits,
        operations,
    };
    StreamReport {
        schema: "bcc-stream-report/v1".to_string(),
        requests: 2,
        failures: 1,
        interactive: 1,
        bulk: 1,
        rejected: 3,
        expired: 1,
        infeasible: 2,
        scheduler: bcc_core::SchedulerStats {
            policy: "wfq".to_string(),
            classes: vec![
                bcc_core::ClassStats {
                    class: "interactive".to_string(),
                    weight: 4,
                    rate_limit: None,
                    submitted: 1,
                    dispatched: 1,
                    expired: 0,
                    throttled: 0,
                    infeasible: 0,
                    predicted_rounds: 2,
                    actual_rounds: 3,
                },
                bcc_core::ClassStats {
                    class: "bulk".to_string(),
                    weight: 1,
                    rate_limit: Some(bcc_core::RateLimit {
                        tokens: 2,
                        window: 8,
                    }),
                    submitted: 1,
                    dispatched: 0,
                    expired: 1,
                    throttled: 3,
                    infeasible: 2,
                    predicted_rounds: 0,
                    actual_rounds: 0,
                },
            ],
        },
        cache_hits: 0,
        cache_misses: 1,
        cache: CacheStats {
            hits: 0,
            misses: 1,
            evictions: 0,
            lru_evictions: 0,
            cost_evictions: 0,
            entries: 1,
            capacity: Some(4),
            policy: "lru".to_string(),
            rebuild_predicted_rounds: 10,
            rebuild_actual_rounds: 9,
        },
        total: RoundReport {
            total_rounds: 12,
            total_bits: 340,
            total_operations: 4,
            breakdown: vec![
                ("laplacian solve".to_string(), phase(3, 40, 2)),
                ("laplacian preprocessing".to_string(), phase(9, 300, 2)),
            ],
        },
        preprocessing: vec![PreprocessingCost {
            fingerprint: "000102030405060708090a0b0c0d0e0f".to_string(),
            requests: 1,
            cached: false,
            report: RoundReport {
                total_rounds: 9,
                total_bits: 300,
                total_operations: 2,
                breakdown: vec![("laplacian preprocessing".to_string(), phase(9, 300, 2))],
            },
        }],
        per_request: vec![
            RequestCost {
                index: 0,
                kind: "laplacian".to_string(),
                seed: 42,
                fingerprint: Some("000102030405060708090a0b0c0d0e0f".to_string()),
                cache_hit: false,
                ok: true,
                error: None,
                report: RoundReport {
                    total_rounds: 3,
                    total_bits: 40,
                    total_operations: 2,
                    breakdown: vec![("laplacian solve".to_string(), phase(3, 40, 2))],
                },
            },
            RequestCost {
                index: 1,
                kind: "sparsify".to_string(),
                seed: 43,
                fingerprint: None,
                cache_hit: false,
                ok: false,
                error: Some("sparsifier: the graph has no edges".to_string()),
                report: RoundReport {
                    total_rounds: 0,
                    total_bits: 0,
                    total_operations: 0,
                    breakdown: vec![],
                },
            },
        ],
        calibration: vec![bcc_core::cost::CalibrationCell {
            kind: "laplacian solve".to_string(),
            bucket: 3,
            observations: 1,
            basis_units: 12,
            actual_rounds: 3,
        }],
    }
}

#[test]
fn stream_report_json_schema_matches_the_golden_snapshot() {
    let json = serde_json::to_string_pretty(&golden_report()).unwrap();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/stream_report.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, format!("{json}\n")).unwrap();
    }
    let golden = std::fs::read_to_string(path).expect(
        "tests/golden/stream_report.json exists (regenerate with scripts/regen-goldens.sh)",
    );
    assert_eq!(
        json,
        golden.trim_end(),
        "StreamReport JSON schema changed — regenerate tests/golden/stream_report.json with \
         scripts/regen-goldens.sh and bump STREAM_REPORT_SCHEMA if the change is not additive"
    );
    // And it round-trips.
    let back: StreamReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, golden_report());
}

#[test]
fn a_real_stream_report_exposes_the_documented_field_names() {
    let grid = generators::grid(3, 3);
    let mut b = vec![0.0; 9];
    b[0] = 1.0;
    b[8] = -1.0;
    let mut engine = StreamEngine::builder().seed(MASTER_SEED).build();
    let output = engine.serve(|client| {
        client
            .submit(Request::laplacian(grid.clone(), b.clone()), Priority::Bulk)
            .unwrap();
    });
    let json = serde_json::to_string(&output.report).unwrap();
    for field in [
        "\"schema\"",
        "\"requests\"",
        "\"failures\"",
        "\"interactive\"",
        "\"bulk\"",
        "\"rejected\"",
        "\"expired\"",
        "\"infeasible\"",
        "\"scheduler\"",
        "\"policy\"",
        "\"rebuild_predicted_rounds\"",
        "\"rebuild_actual_rounds\"",
        "\"classes\"",
        "\"class\"",
        "\"weight\"",
        "\"rate_limit\"",
        "\"submitted\"",
        "\"dispatched\"",
        "\"throttled\"",
        "\"predicted_rounds\"",
        "\"actual_rounds\"",
        "\"cache_hits\"",
        "\"cache_misses\"",
        "\"cache\"",
        "\"hits\"",
        "\"misses\"",
        "\"evictions\"",
        "\"lru_evictions\"",
        "\"cost_evictions\"",
        "\"entries\"",
        "\"capacity\"",
        "\"total\"",
        "\"preprocessing\"",
        "\"per_request\"",
        "\"total_rounds\"",
        "\"total_bits\"",
        "\"total_operations\"",
        "\"breakdown\"",
        "\"fingerprint\"",
        "\"cache_hit\"",
        "\"seed\"",
        "\"kind\"",
        "\"index\"",
        "\"ok\"",
        "\"error\"",
        "\"cached\"",
        "\"calibration\"",
        "\"bucket\"",
        "\"observations\"",
        "\"basis_units\"",
    ] {
        assert!(json.contains(field), "missing field {field} in {json}");
    }
    assert_eq!(output.report.schema, "bcc-stream-report/v1");
}
