//! Integration tests of the `bcc_core::Session` API: equivalence with the
//! legacy free functions, typed error paths on malformed input, and the
//! preprocess-once / solve-many amortization of Theorem 1.3.

// The deprecated free functions stay under test until they are removed:
// these suites prove `Session` is bit-identical to them.
#![allow(deprecated)]

use bcc_core::prelude::*;
use bcc_core::{graph::generators, Error};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

// ---------------------------------------------------------------------------
// Equivalence: the legacy free functions are wrappers over `Session`, so at
// equal seeds the results must be bit-identical.
// ---------------------------------------------------------------------------

#[test]
fn session_sparsify_is_bit_identical_to_the_legacy_function() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let graph = generators::random_connected(30, 0.4, 6, &mut rng);
    for seed in [1u64, 7, 2022] {
        let (legacy, legacy_report) = bcc_core::spectral_sparsify(&graph, 0.5, seed);
        let mut session = Session::builder().seed(seed).build();
        let outcome = session.sparsify(&graph, 0.5).unwrap();
        assert_eq!(outcome.value.sparsifier, legacy, "seed {seed}");
        assert_eq!(outcome.report, legacy_report, "seed {seed}");
    }
}

#[test]
fn session_laplacian_is_bit_identical_to_the_legacy_function() {
    let graph = generators::grid(5, 4);
    let mut b = vec![0.0; graph.n()];
    b[0] = 2.0;
    b[19] = -2.0;
    for seed in [3u64, 42] {
        let (legacy, legacy_report) = bcc_core::solve_laplacian_bcc(&graph, &b, 1e-6, seed);
        let session = Session::builder().seed(seed).build();
        let mut prepared = session
            .laplacian(&graph)
            .epsilon(1e-6)
            .preprocess()
            .unwrap();
        let outcome = prepared.solve(&b).unwrap();
        assert_eq!(outcome.value.solution, legacy, "seed {seed}");
        assert_eq!(prepared.report(), legacy_report, "seed {seed}");
    }
}

#[test]
fn session_flow_is_bit_identical_to_the_legacy_function() {
    let mut rng = ChaCha8Rng::seed_from_u64(55);
    let instance = generators::random_flow_instance(5, 0.3, 3, &mut rng);
    let (legacy, legacy_report) = bcc_core::min_cost_max_flow_bcc(&instance, 13);
    let mut session = Session::builder().seed(13).build();
    let outcome = session.min_cost_max_flow(&instance).unwrap();
    assert_eq!(outcome.value.flow, legacy.flow);
    assert_eq!(outcome.value.fractional, legacy.fractional);
    assert_eq!(outcome.value.rounds, legacy.rounds);
    assert_eq!(outcome.report, legacy_report);
}

// ---------------------------------------------------------------------------
// Error paths: malformed input returns `Err`, never panics.
// ---------------------------------------------------------------------------

#[test]
fn disconnected_graph_returns_a_typed_error() {
    let disconnected = Graph::from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
    let session = Session::new();
    let err = session.laplacian(&disconnected).preprocess().unwrap_err();
    assert!(matches!(
        err,
        Error::Laplacian(bcc_core::laplacian::LaplacianError::Disconnected)
    ));
    assert!(err.to_string().contains("connected"));
}

#[test]
fn mismatched_rhs_length_returns_a_typed_error() {
    let graph = generators::grid(3, 3);
    let session = Session::new();
    let mut prepared = session.laplacian(&graph).preprocess().unwrap();
    let err = prepared.solve(&[1.0, -1.0]).unwrap_err();
    match err {
        Error::Laplacian(bcc_core::laplacian::LaplacianError::DimensionMismatch {
            expected,
            actual,
        }) => {
            assert_eq!(expected, 9);
            assert_eq!(actual, 2);
        }
        other => panic!("expected a dimension mismatch, got {other:?}"),
    }
}

#[test]
fn invalid_epsilon_values_return_typed_errors() {
    let graph = generators::grid(3, 3);
    let mut session = Session::new();
    assert!(matches!(
        session.sparsify(&graph, 0.0),
        Err(Error::InvalidEpsilon { .. })
    ));
    assert!(matches!(
        session.sparsify(&graph, f64::NAN),
        Err(Error::InvalidEpsilon { .. })
    ));
    let mut prepared = session.laplacian(&graph).preprocess().unwrap();
    let b = vec![0.0; 9];
    assert!(matches!(
        prepared.solve_with_epsilon(&b, 0.9),
        Err(Error::Laplacian(
            bcc_core::laplacian::LaplacianError::InvalidEpsilon { .. }
        ))
    ));
}

#[test]
fn empty_graph_and_empty_instance_return_typed_errors() {
    let mut session = Session::new();
    let empty = Graph::new(4);
    assert!(matches!(
        session.sparsify(&empty, 0.5),
        Err(Error::Sparsifier(
            bcc_core::sparsifier::SparsifierError::EmptyGraph
        ))
    ));
    let instance = FlowInstance::new(DiGraph::new(3), 0, 2);
    assert!(matches!(
        session.min_cost_max_flow(&instance),
        Err(Error::Flow(bcc_core::flow::FlowError::EmptyInstance))
    ));
}

#[test]
fn non_interior_lp_start_returns_a_typed_error() {
    use bcc_core::linalg::CsrMatrix;
    let lp = LpInstance {
        a: CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
        b: vec![1.0],
        c: vec![0.0, 1.0],
        lower: vec![0.0, 0.0],
        upper: vec![1.0, 1.0],
    };
    let mut session = Session::new();
    let options = LpOptions::new(1e-3, lp.m(), 1).with_uniform_weights();
    // On the boundary: not strictly interior.
    let request = LpRequest::new(vec![1.0, 0.0], options.clone());
    assert!(matches!(
        session.lp(&lp, &request),
        Err(Error::Lp(bcc_core::lp::LpError::NotInterior))
    ));
    // Interior but off the equality manifold.
    let request = LpRequest::new(vec![0.4, 0.4], options.clone());
    assert!(matches!(
        session.lp(&lp, &request),
        Err(Error::Lp(bcc_core::lp::LpError::InfeasibleStart { .. }))
    ));
    // A malformed instance (inverted bounds).
    let mut bad = lp.clone();
    bad.lower[0] = 2.0;
    let request = LpRequest::new(vec![0.5, 0.5], options);
    assert!(matches!(
        session.lp(&bad, &request),
        Err(Error::Lp(bcc_core::lp::LpError::MalformedInstance(_)))
    ));
}

#[test]
fn nan_demand_vector_is_rejected_not_solved() {
    use bcc_core::linalg::CsrMatrix;
    let lp = LpInstance {
        a: CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
        b: vec![f64::NAN],
        c: vec![0.0, 1.0],
        lower: vec![0.0, 0.0],
        upper: vec![1.0, 1.0],
    };
    let mut session = Session::new();
    let options = LpOptions::new(1e-3, lp.m(), 1).with_uniform_weights();
    let request = LpRequest::new(vec![0.5, 0.5], options);
    // NaN data must be rejected up front, not flow through the solver as a
    // NaN "solution" (`norm_inf` ignores NaN, so the residual gate alone
    // would not catch it).
    assert!(matches!(
        session.lp(&lp, &request),
        Err(Error::Lp(bcc_core::lp::LpError::MalformedInstance(_)))
    ));
}

#[test]
fn session_lp_solves_a_valid_instance() {
    use bcc_core::linalg::CsrMatrix;
    let lp = LpInstance {
        a: CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
        b: vec![1.0],
        c: vec![0.0, 1.0],
        lower: vec![0.0, 0.0],
        upper: vec![1.0, 1.0],
    };
    let mut session = Session::new();
    let options = LpOptions::new(1e-3, lp.m(), 1).with_uniform_weights();
    let request = LpRequest::new(vec![0.5, 0.5], options);
    let outcome = session.lp(&lp, &request).unwrap();
    assert!(lp.is_feasible(&outcome.value.x, 1e-6));
    assert!(outcome.value.objective < 5e-3);
    assert!(outcome.report.has_phase("lp solve"));
}

// ---------------------------------------------------------------------------
// Amortization: preprocess once, solve many.
// ---------------------------------------------------------------------------

#[test]
fn solve_many_amortizes_one_preprocessing_over_the_batch() {
    let graph = generators::grid(5, 5);
    let session = Session::builder().seed(9).build();

    // Serve a batch of four right-hand sides off one preprocessing pass.
    let mut prepared = session
        .laplacian(&graph)
        .epsilon(1e-6)
        .preprocess()
        .unwrap();
    let preprocessing = prepared.preprocessing_report().clone();
    let preprocessing_rounds = preprocessing.total_rounds;
    assert!(preprocessing_rounds > 0);

    let batch: Vec<Vec<f64>> = (1..5)
        .map(|k| {
            let mut b = vec![0.0; graph.n()];
            b[0] = 1.0;
            b[graph.n() - k] = -1.0;
            b
        })
        .collect();
    let outcome = prepared.solve_many(&batch).unwrap();
    assert_eq!(outcome.value.len(), 4);
    assert_eq!(prepared.solves(), 4);

    // The batch outcome's report covers the solves alone — preprocessing
    // does not leak into per-request metering.
    let phases: Vec<_> = outcome.report.phase_names().collect();
    assert_eq!(phases, vec!["laplacian solve"]);
    let solve_rounds = outcome.report.total_rounds;
    assert!(solve_rounds > 0);

    // The handle's cumulative ledger charges the preprocessing phases exactly
    // once: every phase charged during preprocessing has identical stats
    // after the batch, and the only growth is the per-solve phase.
    let cumulative = prepared.report();
    for (name, stats) in &preprocessing.breakdown {
        assert_eq!(
            cumulative.phase(name),
            Some(*stats),
            "preprocessing phase {name} must be charged exactly once"
        );
    }
    assert_eq!(
        cumulative.total_rounds,
        preprocessing_rounds + solve_rounds,
        "every charged round is either preprocessing (once) or per-solve"
    );

    // Each additional solve is far cheaper than preprocessing…
    assert!(solve_rounds / 4 < preprocessing_rounds);
    // …and every solution meets the accuracy contract.
    for (b, solve) in batch.iter().zip(&outcome.value) {
        assert!(prepared.solver().relative_error(b, &solve.solution) < 1e-5);
    }
}

#[test]
fn round_reports_round_trip_through_json_for_cost_telemetry() {
    let mut session = Session::builder().seed(5).build();
    let graph = generators::complete(10);
    let outcome = session.sparsify(&graph, 0.5).unwrap();
    assert!(!outcome.report.breakdown.is_empty());

    let json = serde_json::to_string(&outcome.report).unwrap();
    let back: RoundReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, outcome.report);

    // Pretty output (the future BENCH_*.json shape) round-trips too.
    let pretty = serde_json::to_string_pretty(&session.cumulative_report()).unwrap();
    let back: RoundReport = serde_json::from_str(&pretty).unwrap();
    assert_eq!(back, session.cumulative_report());
}

#[test]
fn solve_many_matches_sequential_solves_bit_for_bit() {
    let graph = generators::grid(4, 4);
    let session = Session::builder().seed(21).build();
    let batch: Vec<Vec<f64>> = (0..3)
        .map(|k| {
            let mut b = vec![0.0; graph.n()];
            b[k] = 1.0;
            b[15 - k] = -1.0;
            b
        })
        .collect();

    let mut many = session.laplacian(&graph).preprocess().unwrap();
    let batched = many.solve_many(&batch).unwrap();

    let mut sequential = session.laplacian(&graph).preprocess().unwrap();
    for (b, from_batch) in batch.iter().zip(&batched.value) {
        let solo = sequential.solve(b).unwrap();
        assert_eq!(solo.value.solution, from_batch.solution);
    }
    assert_eq!(sequential.report(), many.report());
}
