//! Cross-crate integration tests: the full Figure-1 pipeline
//! (spanner → sparsifier → Laplacian solver → LP solver → min-cost max-flow)
//! exercised end-to-end on seeded random instances.

// The legacy free functions stay under test until they are removed.
#![allow(deprecated)]

use bcc_core::prelude::*;
use bcc_core::{graph::generators, linalg::vector, sparsifier::quality};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn spanner_feeds_sparsifier_feeds_laplacian_solver() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let graph = generators::random_connected(36, 0.35, 8, &mut rng);

    // Stage 1: a Baswana–Sen spanner of the graph (Broadcast CONGEST).
    let mut bc =
        Network::on_graph(ModelConfig::broadcast_congest(), graph.adjacency_lists()).unwrap();
    let spanner_out = baswana_sen_spanner(&mut bc, &graph, SpannerParams { k: 3, seed: 1 });
    let spanner = graph.subgraph(&spanner_out.f_plus);
    assert!(bcc_core::spanner::verify::is_spanner_of(
        &spanner, &graph, 5
    ));

    // Stage 2: a spectral sparsifier (Broadcast CONGEST), certified.
    let (sparsifier, sparsifier_report) = bcc_core::spectral_sparsify(&graph, 0.5, 3);
    assert!(sparsifier.is_connected());
    let eps = quality::achieved_epsilon(&graph, &sparsifier);
    assert!(
        eps.is_finite(),
        "sparsifier must spectrally dominate the graph"
    );
    assert!(sparsifier_report.total_rounds > 0);

    // Stage 3: Laplacian solve (BCC) against the dense ground truth.
    let mut b = vec![0.0; graph.n()];
    b[3] = 2.0;
    b[17] = -2.0;
    let (x, _) = bcc_core::solve_laplacian_bcc(&graph, &b, 1e-8, 4);
    let exact = bcc_core::laplacian::exact_solve(&graph, &b);
    let diff = vector::sub(&x, &exact);
    let rel = bcc_core::graph::laplacian::laplacian_norm(&graph, &diff)
        / bcc_core::graph::laplacian::laplacian_norm(&graph, &exact);
    assert!(rel < 1e-4, "relative L-norm error {rel}");
}

#[test]
fn full_flow_pipeline_matches_the_combinatorial_baseline() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let instance = generators::random_flow_instance(6, 0.3, 3, &mut rng);
    let baseline = ssp_min_cost_max_flow(&instance);
    let (result, report) = bcc_core::min_cost_max_flow_bcc(&instance, 5);
    assert!(result.rounded_feasible);
    assert_eq!(result.flow.value, baseline.value);
    assert_eq!(result.flow.cost, baseline.cost);
    // The pipeline communicates but stays far below the trivial "ship the
    // whole graph to one vertex" cost of Θ(m·log n / log n) = Θ(m) rounds…
    // sanity-check it is simply positive and the ledger has the phases.
    assert!(report.total_rounds > 0);
    assert!(report.has_phase("path following"));
    assert!(report.has_phase("mcmf"));
    // The structured breakdown preserves ledger order and renders the legacy
    // human-readable table through Display.
    assert!(report.to_string().contains("path following"));
    assert!(report.to_string().contains("TOTAL"));
}

#[test]
fn round_counts_scale_sublinearly_in_the_number_of_edges() {
    // Theorem 1.2's round bound is polylogarithmic in n (and independent of
    // m); doubling the density of the graph must not double the rounds.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let sparse = generators::random_connected(40, 0.1, 4, &mut rng);
    let dense = generators::random_connected(40, 0.8, 4, &mut rng);
    let (_, sparse_report) = bcc_core::spectral_sparsify(&sparse, 0.5, 1);
    let (_, dense_report) = bcc_core::spectral_sparsify(&dense, 0.5, 1);
    let edge_ratio = dense.m() as f64 / sparse.m() as f64;
    let round_ratio = dense_report.total_rounds as f64 / sparse_report.total_rounds as f64;
    assert!(edge_ratio > 3.0, "edge ratio {edge_ratio}");
    assert!(
        round_ratio < edge_ratio / 1.5,
        "rounds grew almost as fast as edges ({round_ratio} vs {edge_ratio})"
    );
}

#[test]
fn laplacian_solver_handles_multiple_right_hand_sides_cheaply() {
    // Theorem 1.3 separates preprocessing from per-instance cost: solving a
    // second system must be much cheaper than preprocessing + first solve.
    let graph = generators::grid(5, 5);
    let cfg = SparsifierConfig::laboratory(graph.n(), graph.m(), 0.5, 9)
        .with_t(6)
        .with_k(2);
    let mut net = Network::clique(ModelConfig::bcc(), graph.n());
    let solver = LaplacianSolver::preprocess(&mut net, &graph, &cfg);
    let preprocessing = solver.preprocessing_rounds();

    let mut b1 = vec![0.0; graph.n()];
    b1[0] = 1.0;
    b1[24] = -1.0;
    let solve1 = solver.solve(&mut net, &b1, 1e-6);
    let mut b2 = vec![0.0; graph.n()];
    b2[4] = 1.0;
    b2[20] = -1.0;
    let solve2 = solver.solve(&mut net, &b2, 1e-6);

    assert!(solve1.rounds < preprocessing);
    assert!(solve2.rounds < preprocessing);
    assert!(solver.relative_error(&b1, &solve1.solution) < 1e-5);
    assert!(solver.relative_error(&b2, &solve2.solution) < 1e-5);
}
