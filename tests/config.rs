//! Integration tests of the unified `EngineConfig` schema: the golden JSON
//! snapshot (the `bcc-engine-config/v1` wire shape three consumers parse),
//! equivalence between the fluent builder setters and `from_config`, and
//! the tenant directory's class mapping.

use bcc_core::config::{
    BackpressurePolicy, ClassEntry, EngineConfig, EvictionPolicy, Priority, RateLimit,
};
use bcc_core::stream::StreamEngineBuilder;
use bcc_core::tenant::{TenantConfig, TenantDirectory};
use bcc_core::{BatchEngineBuilder, ConfigError};

/// The committed example config: every field populated, so the snapshot
/// pins the complete schema.
fn golden_config() -> EngineConfig {
    let mut config = EngineConfig {
        seed: 2022,
        epsilon: 1e-6,
        workers: Some(2),
        max_workers: Some(8),
        shards: 16,
        queue_capacity: 64,
        backpressure: BackpressurePolicy::Block,
        cache_capacity: Some(128),
        eviction_policy: EvictionPolicy::CostAware,
        cost_aware_tags: true,
        ..EngineConfig::default()
    };
    config.class_entry(Priority::Interactive).weight = 4;
    let bulk = config.class_entry(Priority::Bulk);
    bulk.weight = 1;
    bulk.rate_limit = Some(RateLimit::new(2, 8));
    config.class_entry(Priority::custom(0)).weight = 3;
    config
}

#[test]
fn engine_config_json_schema_matches_the_golden_snapshot() {
    let json = serde_json::to_string_pretty(&golden_config()).unwrap();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/engine_config.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, format!("{json}\n")).unwrap();
    }
    let golden = std::fs::read_to_string(path).expect(
        "tests/golden/engine_config.json exists (regenerate with scripts/regen-goldens.sh)",
    );
    assert_eq!(
        json,
        golden.trim_end(),
        "EngineConfig JSON schema changed — regenerate tests/golden/engine_config.json with \
         scripts/regen-goldens.sh and bump ENGINE_CONFIG_SCHEMA if the change is not additive"
    );
    // And it round-trips bit-identically.
    let back: EngineConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, golden_config());
}

#[test]
fn from_config_equals_the_fluent_setter_chain() {
    let fluent = StreamEngineBuilder::default()
        .seed(2022)
        .elastic_workers(2, 8)
        .cache_capacity(128)
        .eviction_policy(EvictionPolicy::CostAware)
        .class_weight(Priority::Interactive, 4)
        .class_weight(Priority::Bulk, 1)
        .class_rate_limit(Priority::Bulk, RateLimit::new(2, 8))
        .class_weight(Priority::custom(0), 3);
    let from_config = StreamEngineBuilder::from_config(golden_config()).unwrap();
    assert_eq!(fluent.to_config(), from_config.to_config());
    assert_eq!(fluent.to_config(), golden_config());
}

#[test]
fn both_builders_consume_the_same_config() {
    let config = golden_config();
    let stream = StreamEngineBuilder::from_config(config.clone())
        .unwrap()
        .build();
    assert_eq!(stream.seed(), config.seed);
    assert_eq!(stream.worker_bounds(), (2, 8));
    assert_eq!(stream.queue_capacity(), 64);
    assert_eq!(stream.cache_capacity(), Some(128));
    assert_eq!(stream.eviction_policy(), EvictionPolicy::CostAware);
    assert_eq!(stream.class_weight(Priority::custom(0)), 3);
    assert_eq!(
        stream.class_rate_limit(Priority::Bulk),
        Some(RateLimit::new(2, 8))
    );

    let batch = BatchEngineBuilder::from_config(config.clone())
        .unwrap()
        .build();
    assert_eq!(batch.seed(), config.seed);
    assert_eq!(batch.workers(), 2);
    assert_eq!(batch.cache_capacity(), Some(128));
}

#[test]
fn invalid_configs_are_rejected_by_both_builders() {
    let mut config = golden_config();
    config.queue_capacity = 0;
    assert_eq!(
        StreamEngineBuilder::from_config(config.clone()).err(),
        Some(ConfigError::ZeroQueueCapacity)
    );
    assert_eq!(
        BatchEngineBuilder::from_config(config).err(),
        Some(ConfigError::ZeroQueueCapacity)
    );
}

#[test]
fn a_config_built_by_setters_round_trips_through_json() {
    let builder = StreamEngineBuilder::default()
        .seed(77)
        .backpressure(BackpressurePolicy::Reject)
        .class_rate_limit(Priority::custom(9), RateLimit::new(1, 4));
    let json = serde_json::to_string(&builder.to_config()).unwrap();
    let back: EngineConfig = serde_json::from_str(&json).unwrap();
    let rebuilt = StreamEngineBuilder::from_config(back).unwrap();
    assert_eq!(rebuilt.to_config(), builder.to_config());
}

#[test]
fn tenant_directory_classes_are_spellable_in_scenario_files() {
    // Tenants map to `custom-<id>` labels, the same strings the load
    // harness's scenario schema accepts as class names.
    let mut dir = TenantDirectory::new();
    let victim = dir.register(TenantConfig::new("victim")).unwrap();
    let flooder = dir.register(TenantConfig::new("flooder")).unwrap();
    assert_eq!(victim.label(), "custom-0");
    assert_eq!(flooder.label(), "custom-1");
    assert_eq!(Priority::parse_label("custom-1"), Some(flooder));

    let mut config = EngineConfig::default();
    dir.apply(&mut config);
    assert!(config
        .classes
        .iter()
        .any(|e| e == &ClassEntry::default_for(victim)));
}
