//! Integration tests of the `bcc_core::batch` serving engine: bit-identity
//! with a sequential `Session` loop across all four pipelines, cache-hit
//! amortization of the Laplacian preprocessing, error isolation inside a
//! batch, and a golden snapshot of the `BatchReport` JSON schema that
//! `BENCH_*.json` consumers rely on.

use std::collections::HashMap;

use bcc_core::batch::{BatchEngine, BatchReport, PreprocessingCost, Request, RequestCost};
use bcc_core::prelude::*;
use bcc_core::{graph::generators, Error, Response};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const MASTER_SEED: u64 = 2022;

/// A mixed workload touching all four pipelines, with a repeated Laplacian
/// topology so the cache has something to amortize.
fn mixed_workload() -> Vec<Request> {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let grid = generators::grid(4, 4);
    let mut b1 = vec![0.0; grid.n()];
    b1[0] = 1.0;
    b1[15] = -1.0;
    let mut b2 = vec![0.0; grid.n()];
    b2[3] = 1.0;
    b2[12] = -1.0;
    let other = generators::random_connected(12, 0.4, 4, &mut rng);
    let mut b3 = vec![0.0; other.n()];
    b3[0] = 2.0;
    b3[11] = -2.0;

    let lp = LpInstance {
        a: bcc_core::linalg::CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
        b: vec![1.0],
        c: vec![0.0, 1.0],
        lower: vec![0.0, 0.0],
        upper: vec![1.0, 1.0],
    };
    let lp_request = LpRequest::new(
        vec![0.5, 0.5],
        LpOptions::new(1e-3, lp.m(), 7).with_uniform_weights(),
    );

    let flow = generators::random_flow_instance(5, 0.3, 3, &mut rng);

    vec![
        Request::sparsify(generators::complete(14), 0.5),
        Request::laplacian(grid.clone(), b1),
        Request::laplacian(grid, b2), // same topology: cache hit
        Request::laplacian(other, b3),
        Request::lp(lp, lp_request),
        Request::min_cost_max_flow(flow),
    ]
}

/// The documented sequential equivalent of `BatchEngine::run`: per-request
/// sessions at the derived seed for sparsify/lp/mcmf, one prepared handle per
/// distinct graph at the master seed for Laplacian solves.
fn sequential_reference(requests: &[Request]) -> Vec<Result<bcc_core::Outcome<Response>, Error>> {
    let engine = BatchEngine::builder().seed(MASTER_SEED).build();
    let mut prepared: HashMap<u128, Result<PreparedLaplacian, Error>> = HashMap::new();
    requests
        .iter()
        .enumerate()
        .map(|(i, request)| {
            let mut session = Session::builder().seed(engine.request_seed(i)).build();
            match request {
                Request::Sparsify { graph, epsilon } => session
                    .sparsify(graph, *epsilon)
                    .map(|o| o.map(Response::Sparsify)),
                Request::Laplacian { graph, b, .. } => {
                    let key = bcc_core::graph::fingerprint::fingerprint(graph).as_u128();
                    let handle = prepared.entry(key).or_insert_with(|| {
                        Session::builder()
                            .seed(MASTER_SEED)
                            .build()
                            .laplacian(graph)
                            .preprocess()
                    });
                    match handle {
                        Ok(handle) => handle.solve(b).map(|o| o.map(Response::Laplacian)),
                        Err(e) => Err(e.clone()),
                    }
                }
                Request::Lp { instance, request } => {
                    session.lp(instance, request).map(|o| o.map(Response::Lp))
                }
                Request::MinCostMaxFlow { instance, options } => match options {
                    Some(opts) => session.min_cost_max_flow_with(instance, opts),
                    None => session.min_cost_max_flow(instance),
                }
                .map(|o| o.map(Response::MinCostMaxFlow)),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Bit-identity: batch == sequential Session loop at equal seeds.
// ---------------------------------------------------------------------------

#[test]
fn batch_is_bit_identical_to_the_sequential_session_loop() {
    let requests = mixed_workload();
    let mut engine = BatchEngine::builder().seed(MASTER_SEED).workers(4).build();
    let batch = engine.run(&requests);
    let reference = sequential_reference(&requests);

    assert_eq!(batch.results.len(), reference.len());
    for (i, (got, want)) in batch.results.iter().zip(&reference).enumerate() {
        match (got, want) {
            (Ok(got), Ok(want)) => {
                assert_eq!(got.value, want.value, "request {i} value");
                assert_eq!(got.report, want.report, "request {i} report");
            }
            (Err(got), Err(want)) => assert_eq!(got, want, "request {i} error"),
            other => panic!("request {i}: batch and sequential disagree: {other:?}"),
        }
    }
}

#[test]
fn worker_count_does_not_change_any_result() {
    let requests = mixed_workload();
    let mut one = BatchEngine::builder().seed(MASTER_SEED).workers(1).build();
    let mut many = BatchEngine::builder().seed(MASTER_SEED).workers(7).build();
    let sequential = one.run(&requests);
    let parallel = many.run(&requests);
    for (a, b) in sequential.results.iter().zip(&parallel.results) {
        assert_eq!(
            a.as_ref().ok().map(|o| &o.value),
            b.as_ref().ok().map(|o| &o.value)
        );
    }
    // The whole report — per-request costs, cache accounting, totals — is
    // scheduling-independent too.
    assert_eq!(sequential.report, parallel.report);
}

#[test]
fn request_seeds_are_deterministic_and_distinct() {
    let engine = BatchEngine::builder().seed(MASTER_SEED).build();
    let again = BatchEngine::builder().seed(MASTER_SEED).build();
    let seeds: Vec<u64> = (0..64).map(|i| engine.request_seed(i)).collect();
    for (i, &s) in seeds.iter().enumerate() {
        assert_eq!(s, again.request_seed(i), "derivation is a pure function");
    }
    let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        seeds.len(),
        "derived seeds must not collide"
    );
    assert_ne!(
        BatchEngine::builder().seed(1).build().request_seed(0),
        engine.request_seed(0),
        "different master seeds derive different request seeds"
    );
}

// ---------------------------------------------------------------------------
// Cache amortization: preprocessing charged once per distinct fingerprint.
// ---------------------------------------------------------------------------

#[test]
fn preprocessing_is_charged_once_per_distinct_fingerprint() {
    let grid = generators::grid(5, 5);
    let requests: Vec<Request> = (1..6)
        .map(|k| {
            let mut b = vec![0.0; grid.n()];
            b[0] = 1.0;
            b[grid.n() - k] = -1.0;
            Request::laplacian(grid.clone(), b)
        })
        .collect();

    let mut engine = BatchEngine::builder().seed(MASTER_SEED).build();
    let output = engine.run(&requests);
    assert!(output.results.iter().all(|r| r.is_ok()));

    let report = &output.report;
    assert_eq!(report.requests, 5);
    assert_eq!(report.preprocessing.len(), 1, "one distinct topology");
    assert_eq!(report.cache_misses, 1);
    assert_eq!(report.cache_hits, 4);
    assert!(!report.preprocessing[0].cached);
    assert_eq!(report.preprocessing[0].requests, 5);

    let preprocessing_rounds = report.preprocessing[0].report.total_rounds;
    assert!(preprocessing_rounds > 0);
    let solve_rounds: u64 = report
        .per_request
        .iter()
        .map(|r| r.report.total_rounds)
        .sum();
    assert!(solve_rounds > 0);
    // The batch total is exactly "preprocessing once + every solve".
    assert_eq!(
        report.total.total_rounds,
        preprocessing_rounds + solve_rounds
    );
    // Amortization: one solve is far cheaper than the preprocessing it skips.
    assert!(solve_rounds / 5 < preprocessing_rounds);

    // A second batch on the same engine reuses the cache: the entry reports
    // as pre-cached and its preprocessing is no longer part of the total.
    let second = engine.run(&requests);
    assert_eq!(second.report.cache_hits, 5);
    assert_eq!(second.report.cache_misses, 0);
    assert!(second.report.preprocessing[0].cached);
    assert_eq!(
        second.report.total.total_rounds,
        second
            .report
            .per_request
            .iter()
            .map(|r| r.report.total_rounds)
            .sum::<u64>()
    );
    assert_eq!(engine.cached_graphs(), 1);

    // The engine's cumulative ledger agrees: two batches of solves, one
    // preprocessing.
    assert_eq!(
        engine.cumulative_report().total_rounds,
        output.report.total.total_rounds + second.report.total.total_rounds
    );

    // Clearing the cache makes the next batch pay preprocessing again.
    engine.clear_cache();
    assert_eq!(engine.cached_graphs(), 0);
    let third = engine.run(&requests);
    assert_eq!(third.report.cache_misses, 1);
    assert!(!third.report.preprocessing[0].cached);
}

#[test]
fn batch_cost_can_be_absorbed_into_a_session_ledger() {
    let requests = vec![
        Request::sparsify(generators::complete(10), 0.5),
        Request::sparsify(generators::complete(12), 0.5),
    ];
    let mut engine = BatchEngine::builder().seed(MASTER_SEED).build();
    let output = engine.run(&requests);

    let mut session = Session::builder().seed(MASTER_SEED).build();
    session.absorb_report(&output.report.total);
    assert_eq!(
        session.cumulative_report().total_rounds,
        output.report.total.total_rounds
    );
    assert_eq!(session.cumulative_report(), output.report.total);
}

// ---------------------------------------------------------------------------
// Error isolation: one malformed request must not poison the batch.
// ---------------------------------------------------------------------------

#[test]
fn a_malformed_request_fails_alone_without_poisoning_the_batch() {
    let grid = generators::grid(4, 4);
    let mut b = vec![0.0; grid.n()];
    b[0] = 1.0;
    b[15] = -1.0;
    let disconnected = Graph::from_edges(6, [(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)]);

    let requests = vec![
        Request::laplacian(grid.clone(), b.clone()),
        Request::laplacian(disconnected.clone(), vec![0.0; 6]),
        Request::sparsify(generators::complete(10), f64::NAN),
        Request::laplacian(grid.clone(), b.clone()),
        Request::sparsify(generators::complete(10), 0.5),
    ];
    let mut engine = BatchEngine::builder().seed(MASTER_SEED).workers(3).build();
    let output = engine.run(&requests);

    assert!(output.results[0].is_ok());
    assert!(matches!(
        output.results[1],
        Err(Error::Laplacian(
            bcc_core::laplacian::LaplacianError::Disconnected
        ))
    ));
    assert!(matches!(
        output.results[2],
        Err(Error::InvalidEpsilon { .. })
    ));
    assert!(output.results[3].is_ok());
    assert!(output.results[4].is_ok());

    let report = &output.report;
    assert_eq!(report.failures, 2);
    assert!(!report.per_request[1].ok);
    assert!(report.per_request[1]
        .error
        .as_deref()
        .unwrap()
        .contains("connected"));
    assert!(report.per_request[2]
        .error
        .as_deref()
        .unwrap()
        .contains("epsilon"));
    assert_eq!(report.per_request[1].report.total_rounds, 0);

    // The healthy requests on the shared grid still amortized correctly, and
    // the two solves are identical to an unpoisoned batch.
    let mut clean_engine = BatchEngine::builder().seed(MASTER_SEED).build();
    let clean = clean_engine.run(&[
        Request::laplacian(grid.clone(), b.clone()),
        Request::laplacian(grid, b),
    ]);
    let poisoned_first = output.results[0].as_ref().unwrap();
    let clean_first = clean.results[0].as_ref().unwrap();
    assert_eq!(poisoned_first.value, clean_first.value);

    // The failed preprocessing is cached too (same typed error on retry,
    // without re-running the sparsifier), and it contributes no rounds.
    let failed_entry = report
        .preprocessing
        .iter()
        .find(|p| {
            p.fingerprint == bcc_core::graph::fingerprint::fingerprint(&disconnected).to_hex()
        })
        .unwrap();
    assert_eq!(failed_entry.report.total_rounds, 0);
    let retry = engine.run(&[Request::laplacian(disconnected, vec![0.0; 6])]);
    assert!(matches!(
        retry.results[0],
        Err(Error::Laplacian(
            bcc_core::laplacian::LaplacianError::Disconnected
        ))
    ));
}

#[test]
fn sdd_gram_choice_on_a_general_lp_is_a_typed_error_not_a_panic() {
    // A generic box LP whose AᵀDA is not diagonally dominant (row (1, 3)
    // makes the (0, 1) off-diagonal 3·d₀ overwhelm the column-0 diagonal
    // d₀ + d₂): the Gremban route's precondition fails and the batch reports
    // it as a typed error — the ROADMAP caveat this PR closes.
    let lp = LpInstance {
        a: bcc_core::linalg::CsrMatrix::from_triplets(
            3,
            2,
            &[(0, 0, 1.0), (0, 1, 3.0), (1, 1, 1.0), (2, 0, 1.0)],
        ),
        b: vec![0.7, 1.4],
        c: vec![1.0, 1.0, 1.0],
        lower: vec![0.0, 0.0, 0.0],
        upper: vec![1.0, 1.0, 1.0],
    };
    let request = LpRequest::new(
        vec![0.3, 0.5, 0.4],
        LpOptions::new(1e-2, lp.m(), 3).with_uniform_weights(),
    )
    .with_sdd_gram(1e-8);

    let mut engine = BatchEngine::builder().seed(MASTER_SEED).build();
    let output = engine.run(&[Request::lp(lp, request)]);
    match &output.results[0] {
        Err(Error::Lp(bcc_core::lp::LpError::GramSolve { solver, message })) => {
            assert_eq!(*solver, "gremban-laplacian");
            assert!(message.contains("diagonally dominant"), "{message}");
        }
        other => panic!("expected a typed GramSolve error, got {other:?}"),
    }
    assert_eq!(output.report.failures, 1);
}

// ---------------------------------------------------------------------------
// Golden snapshot: the BatchReport / RoundReport JSON schema is stable.
// ---------------------------------------------------------------------------

/// A small handcrafted report with every field populated deterministically.
fn golden_report() -> BatchReport {
    let phase = |rounds: u64, bits: u64, operations: u64| bcc_core::runtime::PhaseStats {
        rounds,
        bits,
        operations,
    };
    BatchReport {
        schema: "bcc-batch-report/v1".to_string(),
        requests: 2,
        failures: 1,
        cache_hits: 1,
        cache_misses: 1,
        cache: bcc_core::CacheStats {
            hits: 1,
            misses: 1,
            evictions: 0,
            lru_evictions: 0,
            cost_evictions: 0,
            entries: 1,
            capacity: None,
            policy: "lru".to_string(),
            rebuild_predicted_rounds: 10,
            rebuild_actual_rounds: 9,
        },
        total: RoundReport {
            total_rounds: 12,
            total_bits: 340,
            total_operations: 4,
            breakdown: vec![
                ("laplacian preprocessing".to_string(), phase(9, 300, 2)),
                ("laplacian solve".to_string(), phase(3, 40, 2)),
            ],
        },
        preprocessing: vec![PreprocessingCost {
            fingerprint: "000102030405060708090a0b0c0d0e0f".to_string(),
            requests: 2,
            cached: false,
            report: RoundReport {
                total_rounds: 9,
                total_bits: 300,
                total_operations: 2,
                breakdown: vec![("laplacian preprocessing".to_string(), phase(9, 300, 2))],
            },
        }],
        per_request: vec![
            RequestCost {
                index: 0,
                kind: "laplacian".to_string(),
                seed: 42,
                fingerprint: Some("000102030405060708090a0b0c0d0e0f".to_string()),
                cache_hit: false,
                ok: true,
                error: None,
                report: RoundReport {
                    total_rounds: 3,
                    total_bits: 40,
                    total_operations: 2,
                    breakdown: vec![("laplacian solve".to_string(), phase(3, 40, 2))],
                },
            },
            RequestCost {
                index: 1,
                kind: "sparsify".to_string(),
                seed: 43,
                fingerprint: None,
                cache_hit: false,
                ok: false,
                error: Some("sparsifier: the graph has no edges".to_string()),
                report: RoundReport {
                    total_rounds: 0,
                    total_bits: 0,
                    total_operations: 0,
                    breakdown: vec![],
                },
            },
        ],
    }
}

#[test]
fn batch_report_json_schema_matches_the_golden_snapshot() {
    let json = serde_json::to_string_pretty(&golden_report()).unwrap();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/batch_report.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, format!("{json}\n")).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .expect("tests/golden/batch_report.json exists (regenerate with scripts/regen-goldens.sh)");
    assert_eq!(
        json,
        golden.trim_end(),
        "BatchReport JSON schema changed — regenerate tests/golden/batch_report.json with \
         scripts/regen-goldens.sh and bump BATCH_REPORT_SCHEMA if the change is not additive"
    );
    // And it round-trips.
    let back: BatchReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, golden_report());
}

#[test]
fn a_real_batch_report_exposes_the_documented_field_names() {
    let grid = generators::grid(3, 3);
    let mut b = vec![0.0; 9];
    b[0] = 1.0;
    b[8] = -1.0;
    let mut engine = BatchEngine::builder().seed(MASTER_SEED).build();
    let output = engine.run(&[Request::laplacian(grid, b)]);
    let json = serde_json::to_string(&output.report).unwrap();
    for field in [
        "\"schema\"",
        "\"requests\"",
        "\"failures\"",
        "\"cache_hits\"",
        "\"cache_misses\"",
        "\"cache\"",
        "\"hits\"",
        "\"misses\"",
        "\"evictions\"",
        "\"lru_evictions\"",
        "\"cost_evictions\"",
        "\"entries\"",
        "\"capacity\"",
        "\"policy\"",
        "\"rebuild_predicted_rounds\"",
        "\"rebuild_actual_rounds\"",
        "\"total\"",
        "\"preprocessing\"",
        "\"per_request\"",
        "\"total_rounds\"",
        "\"total_bits\"",
        "\"total_operations\"",
        "\"breakdown\"",
        "\"fingerprint\"",
        "\"cache_hit\"",
        "\"seed\"",
        "\"kind\"",
        "\"index\"",
        "\"ok\"",
        "\"error\"",
        "\"cached\"",
    ] {
        assert!(json.contains(field), "missing field {field} in {json}");
    }
    assert_eq!(output.report.schema, "bcc-batch-report/v1");
}

#[test]
fn the_batch_engine_supports_the_cost_aware_eviction_policy() {
    use bcc_core::EvictionPolicy;

    let grid = generators::grid(4, 4);
    let mut b = vec![0.0; grid.n()];
    b[0] = 1.0;
    b[15] = -1.0;
    let requests = vec![Request::laplacian(grid, b)];

    let mut engine = BatchEngine::builder()
        .seed(MASTER_SEED)
        .cache_capacity(2)
        .eviction_policy(EvictionPolicy::CostAware)
        .build();
    assert_eq!(engine.eviction_policy(), EvictionPolicy::CostAware);
    let output = engine.run(&requests);
    assert!(output.results[0].is_ok());
    assert_eq!(output.report.cache.policy, "cost-aware");

    // The policy only decides eviction victims — results are identical to
    // the LRU default.
    let mut lru = BatchEngine::builder().seed(MASTER_SEED).build();
    assert_eq!(lru.eviction_policy(), EvictionPolicy::Lru);
    let lru_out = lru.run(&requests);
    match (&output.results[0], &lru_out.results[0]) {
        (Ok(a), Ok(b)) => assert_eq!(a.value, b.value),
        other => panic!("results must agree across policies: {other:?}"),
    }
}
