//! Property-based tests (proptest) on the core invariants of the
//! reproduction: spanner stretch, sparsifier spectral domination, Laplacian
//! solver error bounds, Gremban reduction correctness, mixed-ball projection
//! feasibility/optimality and flow feasibility/optimality.

use bcc_core::prelude::*;
use bcc_core::{graph::generators, graph::laplacian, linalg::vector};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random connected weighted graph described by (n, density, weight cap, seed).
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (6usize..28, 0usize..100, 1u64..8, any::<u64>()).prop_map(|(n, density, maxw, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::random_connected(n, density as f64 / 100.0, maxw, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn baswana_sen_spanner_has_the_promised_stretch(g in graph_strategy(), k in 2usize..4, seed in any::<u64>()) {
        let mut net = Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap();
        let out = baswana_sen_spanner(&mut net, &g, SpannerParams { k, seed });
        let spanner = g.subgraph(&out.f_plus);
        prop_assert!(bcc_core::spanner::verify::is_spanner_of(&spanner, &g, 2 * k - 1));
        // With p ≡ 1 nothing is ever sampled out.
        prop_assert!(out.f_minus.is_empty());
    }

    #[test]
    fn sparsifier_spectrally_dominates_and_stays_connected(g in graph_strategy(), seed in any::<u64>()) {
        let cfg = SparsifierConfig::laboratory(g.n(), g.m().max(2), 0.5, seed).with_t(4).with_k(2);
        let mut net = Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap();
        let out = sparsify_ad_hoc(&mut net, &g, &cfg);
        prop_assert!(out.sparsifier.is_connected());
        let eps = bcc_core::sparsifier::quality::achieved_epsilon(&g, &out.sparsifier);
        prop_assert!(eps.is_finite());
        // Every sparsifier edge weight is the original times a power of four.
        for (i, &orig) in out.edge_origin.iter().enumerate() {
            let ratio = out.sparsifier.edge(i).weight / g.edge(orig).weight;
            let log4 = ratio.log2() / 2.0;
            prop_assert!((log4 - log4.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn laplacian_solver_meets_its_error_guarantee(g in graph_strategy(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let raw: Vec<f64> = (0..g.n()).map(|_| rng.gen::<f64>() - 0.5).collect();
        let b = vector::remove_mean(&raw);
        let solver = LaplacianSolver::exact_preconditioner(&g);
        let mut net = Network::clique(ModelConfig::bcc(), g.n());
        for eps in [0.25, 1e-3] {
            let solve = solver.solve(&mut net, &b, eps);
            let err = solver.relative_error(&b, &solve.solution);
            prop_assert!(err <= eps * 1.05, "eps {} err {}", eps, err);
        }
    }

    #[test]
    fn gremban_reduction_solves_sdd_systems(n in 3usize..10, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Random strictly dominant SDD matrix whose sparsity graph is
        // connected (the Gremban reduction targets connected systems; the
        // flow-LP matrices of Lemma 5.1 always are).
        let mut triplets = Vec::new();
        let mut row_sum = vec![0.0f64; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if j == i + 1 || rng.gen::<f64>() < 0.5 {
                    let sign: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                    let v = sign * (0.5 + rng.gen::<f64>());
                    triplets.push((i, j, v));
                    row_sum[i] += v.abs();
                    row_sum[j] += v.abs();
                }
            }
        }
        for i in 0..n {
            triplets.push((i, i, row_sum[i] + 0.5 + rng.gen::<f64>()));
        }
        let matrix = bcc_core::laplacian::SddMatrix::from_triplets(n, triplets).unwrap();
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let b = matrix.apply(&x_true);
        let mut net = Network::clique(ModelConfig::bcc(), n);
        let x = bcc_core::laplacian::solve_sdd(
            &mut net,
            &matrix,
            &b,
            1e-8,
            &bcc_core::laplacian::SddSolveMode::ExactPreconditioner,
        );
        prop_assert!(vector::approx_eq(&x, &x_true, 1e-3), "{:?} vs {:?}", x, x_true);
    }

    #[test]
    fn mixed_ball_projection_is_feasible_and_locally_optimal(
        m in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() * 6.0 - 3.0).collect();
        let l: Vec<f64> = (0..m).map(|_| 0.05 + rng.gen::<f64>() * 2.0).collect();
        let mut net = Network::clique(ModelConfig::bcc(), 4);
        let projection = bcc_core::lp::project_mixed_ball(&mut net, &a, &l);
        prop_assert!(bcc_core::lp::mixed_ball::is_in_mixed_ball(&projection.x, &l, 1e-6));
        // No random feasible point may beat it.
        for _ in 0..25 {
            let dir: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let norm = vector::norm2(&dir);
            let inf: f64 = dir.iter().zip(&l).map(|(x, li)| x.abs() / li).fold(0.0, f64::max);
            if norm + inf < 1e-9 {
                continue;
            }
            let scale = 0.999 / (norm + inf);
            let candidate: Vec<f64> = dir.iter().map(|v| v * scale).collect();
            let value = vector::dot(&candidate, &a);
            prop_assert!(projection.value >= value - 1e-6);
        }
    }

    #[test]
    fn dinic_and_ssp_agree_and_flows_are_feasible(n in 4usize..9, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let instance = generators::random_flow_instance(n, 0.3, 5, &mut rng);
        let max_flow = bcc_core::flow::dinic_max_flow(&instance);
        let mcmf = ssp_min_cost_max_flow(&instance);
        prop_assert_eq!(max_flow.value, mcmf.value);
        let as_f64: Vec<f64> = mcmf.flow.iter().map(|&f| f as f64).collect();
        prop_assert!(instance.is_feasible(&as_f64, 1e-9));
        prop_assert!(mcmf.cost <= max_flow.cost);
    }

    #[test]
    fn laplacian_quadratic_form_is_positive_semidefinite(g in graph_strategy(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x: Vec<f64> = (0..g.n()).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        prop_assert!(laplacian::quadratic_form(&g, &x) >= -1e-9);
        // The kernel contains the constant vectors.
        let c = vec![rng.gen::<f64>(); g.n()];
        prop_assert!(laplacian::quadratic_form(&g, &c).abs() < 1e-7);
    }
}
