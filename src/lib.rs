//! Workspace root crate: thin re-export of [`bcc_core`] so that examples and
//! integration tests in this repository have a single import path.
//!
//! Start with [`bcc_core::Session`] — the typed, fallible, reusable pipeline
//! API over the paper's four theorems.
pub use bcc_core::*;
