//! Workspace root crate: thin re-export of [`bcc_core`] so that examples and
//! integration tests in this repository have a single import path.
pub use bcc_core::*;
